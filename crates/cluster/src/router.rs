//! The cluster router: a TCP front-end that shards synthesis requests
//! across N `troy-service` worker daemons.
//!
//! The router speaks the exact daemon protocol (one JSON request per
//! line, one response line per request), so a client cannot tell a
//! cluster from a single daemon except by reading the `stats` trailer.
//! Placement is by the request's content-addressed cache key on a
//! seeded consistent-hash ring ([`crate::ring`]); the routing pipeline
//! for a `synth` is:
//!
//! 1. **Key + walk** — derive the cache key, walk the ring: rank 1 is
//!    the shard owner, later ranks are failover targets.
//! 2. **Peer cache probes** — before dispatching, probe up to
//!    `probe_depth` other non-dead workers' caches over the wire
//!    (`cmd: "probe"`); a hit is relayed as-is, certificate included.
//!    The dispatch head checks its own cache inline, so it is never
//!    probed. This is the shared cache tier: after a rebalance or a
//!    demotion, the previous owner's warm results keep serving. A hit
//!    on a non-owner triggers a background *read-repair* put to the
//!    live owner so ownership locality heals itself.
//! 3. **Dispatch with failover** — forward to the first live worker
//!    whose rationed [`Breaker`](troy_service::Breaker) admits, with
//!    `deadline_ms` rewritten to the *remaining* budget. A transport
//!    failure (dead worker, torn frame, partition) records a breaker
//!    failure and re-dispatches to the next candidate with the
//!    remaining deadline intact; the served response gains a `TS005`
//!    diagnostic whenever a non-owner answered.
//! 4. **Write-behind replication** — a fresh un-degraded result is
//!    copied (`cmd: "put"`) to the next `replication - 1` ring
//!    successors in the background; the receiving worker re-validates
//!    the entry through the certified-store gate before storing it.
//!    Killing the owner then costs zero re-solves: the hot key keeps
//!    serving, byte-identical, from a replica.
//! 5. **Typed shed** — with no admissible worker at all, the router
//!    sheds `unavailable` + `TS006` with a `retry_after_ms` hint taken
//!    from the breakers. Worker-issued rejections (overload, draining)
//!    are relayed verbatim — their `retry_after_ms` comes from the
//!    worker that owns the queue, not from a router constant — tagged
//!    with the worker's name.
//!
//! A health-check thread pings every non-dead worker each
//! `health_interval` through the same breaker (`admit` → ping →
//! outcome), so a sick worker is demoted from dispatch by its breaker
//! and promoted back by a successful half-open probe, without any state
//! change a request could race against.
//!
//! **Respawn supervision** (`respawn: true`): a supervisor thread scans
//! for dead slots and adopts a fresh in-process daemon into each —
//! same name, new generation ([`WorkerSlot::adopt`]) — with
//! deterministic seeded backoff between attempts and a per-slot
//! `max_respawns` budget. The newcomer's breaker is re-armed in
//! *probation* (half-open: exactly one trial decides), the ring is
//! rebuilt (same membership, so placement is restored verbatim — see
//! `rejoin_restores_the_pre_kill_assignment`), and the newcomer's cold
//! cache is warmed from its ring successors out of the router's
//! recent-dispatch memory. Responses served by a respawned worker carry
//! `TS007`.
//!
//! **Durable dispatch journal** (`journal_dir: Some(_)`): every
//! accepted `synth` frame is appended (fsync'd) to an append-only
//! checksummed WAL *before* dispatch and marked completed when its
//! response goes out. On restart, accepted entries without a terminal
//! outcome are replayed through normal dispatch (tagged `TS008`), so a
//! router crash loses no accepted request — at-least-once, never
//! silence. See [`crate::journal`].
//!
//! Chaos: with a seeded [`Chaos`] handle the router injects
//! [`ClusterFault`]s at dispatch sites — worker kill, stall, partition,
//! torn frame — and [`SelfHealFault`]s at the healing sites — respawn
//! storms (the replacement dies instantly), torn journal appends,
//! dropped replica writes — which is how the cluster-level soak drives
//! the never-lost contract: every accepted request terminates with a
//! valid certified result, a typed error, or an explicit shed carrying
//! `retry_after_ms`.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use troy_analysis::Code;
use troy_resilience::{Backoff, Chaos, ClusterFault, SelfHealFault};
use troy_service::{
    parse_request, request_key, BreakerConfig, BreakerDecision, Cmd, Json, RejectKind, Request,
    Response, Service, ServiceConfig, StatsSnapshot, MAX_LINE,
};

use crate::journal::{Journal, JournalEntry};
use crate::ring::Ring;
use crate::stats::{ClusterSnapshot, ClusterStats};
use crate::worker::{WorkerSlot, WorkerState};

/// Dispatched frames remembered for warming a respawned worker's cache.
const RECENT_CAP: usize = 256;

/// How the cluster runs.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Router bind address (`:0` picks a free port).
    pub addr: String,
    /// In-process worker daemons to spawn (each binds `127.0.0.1:0`).
    pub workers: usize,
    /// Consistent-hash ring seed; fixes placement.
    pub ring_seed: u64,
    /// Virtual nodes per worker on the ring.
    pub replicas: usize,
    /// Non-head workers whose caches are probed before a dispatch.
    pub probe_depth: usize,
    /// Deadline applied when a request carries no `deadline_ms`.
    pub default_deadline: Duration,
    /// How long the final drain waits for router connections.
    pub drain_deadline: Duration,
    /// Slowloris bound for frames arriving at the router.
    pub frame_deadline: Duration,
    /// Extra wait past a request's deadline for the worker's own typed
    /// deadline response to arrive before the router fails over.
    pub dispatch_grace: Duration,
    /// Budget for one peer cache probe round trip.
    pub probe_timeout: Duration,
    /// Period of the health-check ping loop.
    pub health_interval: Duration,
    /// Budget for one health-check ping round trip.
    pub health_timeout: Duration,
    /// Per-worker rationed breaker policy (dispatch + health outcomes).
    pub worker_breaker: BreakerConfig,
    /// Per-worker admission: concurrent syntheses.
    pub max_inflight: usize,
    /// Per-worker admission: bounded queue depth.
    pub queue_depth: usize,
    /// Run the respawn supervisor: dead slots are revived with a fresh
    /// daemon under a new generation.
    pub respawn: bool,
    /// Per-slot respawn budget; once exhausted the slot stays dead.
    pub max_respawns: u32,
    /// Replication factor R: fresh un-degraded results are written
    /// behind to the next R−1 ring successors. `<= 1` disables both
    /// write-behind and read-repair.
    pub replication: usize,
    /// Directory for the durable dispatch journal; `None` disables it.
    pub journal_dir: Option<PathBuf>,
    /// Cluster-fault injector (dispatch-site faults only; the workers
    /// themselves run without chaos so results stay deterministic).
    pub chaos: Chaos,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            ring_seed: 0x7452_6f79, // "tRoy"
            replicas: 32,
            probe_depth: 2,
            default_deadline: Duration::from_secs(30),
            drain_deadline: Duration::from_secs(5),
            frame_deadline: Duration::from_secs(2),
            dispatch_grace: Duration::from_millis(500),
            probe_timeout: Duration::from_millis(250),
            health_interval: Duration::from_millis(500),
            health_timeout: Duration::from_millis(250),
            worker_breaker: BreakerConfig {
                failure_threshold: 3,
                cooldown: Duration::from_secs(2),
            },
            max_inflight: 4,
            queue_depth: 8,
            respawn: false,
            max_respawns: 8,
            replication: 2,
            journal_dir: None,
            chaos: Chaos::disabled(),
        }
    }
}

/// State shared by the accept loop, every connection, the health thread,
/// the supervisor and the handle.
struct Shared {
    stats: ClusterStats,
    /// Append-only: slots are cordoned or killed, never removed, so
    /// ring member indices stay stable.
    workers: RwLock<Vec<Arc<WorkerSlot>>>,
    ring: RwLock<Ring>,
    draining: AtomicBool,
    connections_live: AtomicU64,
    chaos: Chaos,
    probe_depth: usize,
    default_deadline: Duration,
    frame_deadline: Duration,
    dispatch_grace: Duration,
    probe_timeout: Duration,
    health_interval: Duration,
    health_timeout: Duration,
    ring_seed: u64,
    replicas: usize,
    worker_breaker: BreakerConfig,
    /// Template for newly joined workers (`addr` re-set per spawn).
    worker_template: ServiceConfig,
    respawn: bool,
    max_respawns: u32,
    replication: usize,
    /// The durable dispatch journal, when configured.
    journal: Option<Journal>,
    /// Recently dispatched `synth` frames, one per cache key — the
    /// supervisor's warm list for a respawned worker's cold cache.
    recent: Mutex<Vec<(u64, String)>>,
    /// Keys already read-repaired since the last ring change, so a hot
    /// key served from a replica does not re-put to its owner on every
    /// request. Cleared whenever membership or a generation changes.
    repaired: Mutex<Vec<u64>>,
}

impl Shared {
    fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn worker_snapshot(&self) -> Vec<Arc<WorkerSlot>> {
        self.workers
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    fn walk_for(&self, key: (u64, u64)) -> crate::ring::Walk {
        self.ring
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .walk(key)
    }

    fn stats_json(&self) -> String {
        self.stats.snapshot().to_json()
    }
}

/// A running cluster: router + workers + health loop (+ supervisor and
/// journal replayer when configured).
pub struct Cluster {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept: JoinHandle<()>,
    health: JoinHandle<()>,
    supervisor: Option<JoinHandle<()>>,
    replayer: Option<JoinHandle<()>>,
    drain_deadline: Duration,
}

/// A handle that can observe and steer the cluster from another thread
/// (and from tests: kill, cordon, join workers).
#[derive(Clone)]
pub struct ClusterHandle {
    shared: Arc<Shared>,
}

impl Cluster {
    /// Spawns `config.workers` in-process daemons, binds the router and
    /// starts the accept and health loops — plus the respawn supervisor
    /// when `respawn` is set, and, with a `journal_dir`, opens the
    /// dispatch journal and replays any incomplete entries from a prior
    /// incarnation through normal dispatch.
    ///
    /// # Errors
    /// Propagates bind failures (router or any worker) and journal I/O
    /// failures.
    #[allow(clippy::needless_pass_by_value)] // mirrors Service::start
    pub fn start(config: ClusterConfig) -> std::io::Result<Cluster> {
        let worker_template = ServiceConfig {
            addr: "127.0.0.1:0".to_owned(),
            max_inflight: config.max_inflight,
            queue_depth: config.queue_depth,
            default_deadline: config.default_deadline,
            drain_deadline: config.drain_deadline,
            frame_deadline: config.frame_deadline,
            ..ServiceConfig::default()
        };
        let mut slots = Vec::with_capacity(config.workers);
        for i in 0..config.workers.max(1) {
            slots.push(Arc::new(spawn_worker(
                i,
                &worker_template,
                config.worker_breaker,
            )?));
        }
        let members: Vec<usize> = (0..slots.len()).collect();
        let ring = Ring::new(config.ring_seed, config.replicas, &members);

        let (journal, replay) = match &config.journal_dir {
            Some(dir) => {
                let (journal, replay) = Journal::open(dir, config.chaos)?;
                (Some(journal), replay)
            }
            None => (None, Vec::new()),
        };

        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let shared = Arc::new(Shared {
            stats: ClusterStats::default(),
            workers: RwLock::new(slots),
            ring: RwLock::new(ring),
            draining: AtomicBool::new(false),
            connections_live: AtomicU64::new(0),
            chaos: config.chaos,
            probe_depth: config.probe_depth,
            default_deadline: config.default_deadline,
            frame_deadline: config.frame_deadline,
            dispatch_grace: config.dispatch_grace,
            probe_timeout: config.probe_timeout,
            health_interval: config.health_interval,
            health_timeout: config.health_timeout,
            ring_seed: config.ring_seed,
            replicas: config.replicas,
            worker_breaker: config.worker_breaker,
            worker_template,
            respawn: config.respawn,
            max_respawns: config.max_respawns,
            replication: config.replication,
            journal,
            recent: Mutex::new(Vec::new()),
            repaired: Mutex::new(Vec::new()),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        let health = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || health_loop(&shared))
        };
        let supervisor = shared.respawn.then(|| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || supervisor_loop(&shared))
        });
        let replayer = (!replay.is_empty()).then(|| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || replay_journal(&shared, replay))
        });
        Ok(Cluster {
            local_addr,
            shared,
            accept,
            health,
            supervisor,
            replayer,
            drain_deadline: config.drain_deadline,
        })
    }

    /// The router's bound address.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A steering handle, cloneable across threads.
    #[must_use]
    pub fn handle(&self) -> ClusterHandle {
        ClusterHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Point-in-time router counters.
    #[must_use]
    pub fn stats(&self) -> ClusterSnapshot {
        self.shared.stats.snapshot()
    }

    /// Blocks until the cluster has drained (a `shutdown` request or
    /// [`ClusterHandle::shutdown`]), gracefully drains every worker
    /// daemon, and returns the final router counters.
    #[must_use]
    pub fn join(self) -> ClusterSnapshot {
        while !self.shared.is_draining() {
            std::thread::sleep(Duration::from_millis(10));
        }
        let _ = self.accept.join();
        let _ = self.health.join();
        if let Some(supervisor) = self.supervisor {
            let _ = supervisor.join();
        }
        if let Some(replayer) = self.replayer {
            let _ = replayer.join();
        }
        let drained_by = Instant::now() + self.drain_deadline;
        while self.shared.connections_live.load(Ordering::SeqCst) > 0 && Instant::now() < drained_by
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        for slot in self.shared.worker_snapshot() {
            let _ = slot.shutdown_service();
        }
        self.shared.stats.snapshot()
    }
}

impl ClusterHandle {
    /// Begins a graceful drain of the whole cluster. Idempotent.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }

    /// `true` once a drain has begun.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.shared.is_draining()
    }

    /// Point-in-time router counters.
    #[must_use]
    pub fn stats(&self) -> ClusterSnapshot {
        self.shared.stats.snapshot()
    }

    /// Number of worker slots ever started (including dead ones).
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.shared
            .workers
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Lifecycle state of worker `i`.
    #[must_use]
    pub fn worker_state(&self, i: usize) -> Option<WorkerState> {
        self.shared.worker_snapshot().get(i).map(|s| s.state())
    }

    /// Respawn generation of worker `i` (0 = the boot daemon).
    #[must_use]
    pub fn worker_generation(&self, i: usize) -> Option<u32> {
        self.shared.worker_snapshot().get(i).map(|s| s.generation())
    }

    /// Serve-path counters of worker `i`'s daemon.
    #[must_use]
    pub fn worker_stats(&self, i: usize) -> Option<StatsSnapshot> {
        self.shared
            .worker_snapshot()
            .get(i)
            .map(|s| s.service_stats())
    }

    /// Accepted journal entries still awaiting a terminal outcome;
    /// `None` when the cluster runs without a journal.
    #[must_use]
    pub fn journal_pending(&self) -> Option<usize> {
        self.shared.journal.as_ref().map(Journal::pending)
    }

    /// Crash-stops worker `i` (the chaos harness's kill primitive):
    /// in-flight responses are dropped, the router observes EOF and
    /// re-dispatches. Returns `false` for an unknown index.
    pub fn kill_worker(&self, i: usize) -> bool {
        match self.shared.worker_snapshot().get(i) {
            Some(slot) => {
                slot.kill();
                true
            }
            None => false,
        }
    }

    /// Cordons worker `i` for graceful rebalance: no new syntheses are
    /// dispatched to it, in-flight work finishes, and its warm cache
    /// keeps answering peer probes until the cluster's final drain.
    /// Returns `false` for an unknown index.
    pub fn drain_worker(&self, i: usize) -> bool {
        match self.shared.worker_snapshot().get(i) {
            Some(slot) => {
                slot.cordon();
                true
            }
            None => false,
        }
    }

    /// Spawns one more in-process worker and rebalances the ring onto
    /// it. Only the keys the joiner now owns move (see
    /// [`Ring::rebuild`]); everything else keeps its warm cache.
    ///
    /// # Errors
    /// Propagates the new daemon's bind failure.
    pub fn add_worker(&self) -> std::io::Result<usize> {
        let mut workers = self
            .shared
            .workers
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        let idx = workers.len();
        let slot = spawn_worker(
            idx,
            &self.shared.worker_template,
            self.shared.worker_breaker,
        )?;
        workers.push(Arc::new(slot));
        let members: Vec<usize> = (0..workers.len()).collect();
        let mut ring = self
            .shared
            .ring
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        let mut rebuilt = Ring::new(self.shared.ring_seed, self.shared.replicas, &members);
        std::mem::swap(&mut *ring, &mut rebuilt);
        drop(ring);
        self.shared
            .repaired
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        Ok(idx)
    }

    /// The ring walk a request's cache key resolves to: index 0 is the
    /// shard owner, later entries the failover order. Lets tests (and
    /// operators) predict placement.
    ///
    /// # Errors
    /// The request does not describe a well-formed synthesis problem.
    pub fn placement(&self, request: &Request) -> Result<Vec<usize>, String> {
        let key = request_key(request)?;
        Ok(self.shared.walk_for(key.halves()).to_vec())
    }

    /// Test-only: poisons the ring and workers locks by panicking on a
    /// helper thread while holding both write guards. Dispatch must keep
    /// working afterwards — the poison-recovery regression.
    #[doc(hidden)]
    pub fn poison_locks_for_tests(&self) {
        let shared = Arc::clone(&self.shared);
        let _ = std::thread::spawn(move || {
            let _ring = shared.ring.write().unwrap_or_else(PoisonError::into_inner);
            let _workers = shared
                .workers
                .write()
                .unwrap_or_else(PoisonError::into_inner);
            panic!("deliberate poison: both router locks held");
        })
        .join();
    }
}

fn spawn_worker(
    idx: usize,
    template: &ServiceConfig,
    breaker: BreakerConfig,
) -> std::io::Result<WorkerSlot> {
    let config = ServiceConfig {
        addr: "127.0.0.1:0".to_owned(),
        ..template.clone()
    };
    let service = Service::start(config)?;
    Ok(WorkerSlot::new(format!("w{idx}"), service, breaker))
}

/// Accepts until drain begins (same nonblocking poll as the daemon).
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.is_draining() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                ClusterStats::bump(&shared.stats.connections);
                shared.connections_live.fetch_add(1, Ordering::SeqCst);
                let shared = Arc::clone(shared);
                std::thread::spawn(move || {
                    handle_connection(stream, &shared);
                    shared.connections_live.fetch_sub(1, Ordering::SeqCst);
                });
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Pings every non-dead worker each `health_interval` through its
/// rationed breaker: `admit` gates the ping (an open breaker cools
/// down untouched; half-open admits exactly one trial), and the ping's
/// outcome is the recorded evidence. Dispatch outcomes feed the same
/// breaker, so error rate and liveness jointly demote a worker.
fn health_loop(shared: &Arc<Shared>) {
    while !shared.is_draining() {
        std::thread::sleep(shared.health_interval);
        for slot in shared.worker_snapshot() {
            if slot.state() == WorkerState::Dead {
                continue;
            }
            match slot.breaker.admit(Instant::now()) {
                BreakerDecision::Reject { .. } => continue,
                BreakerDecision::Admit { .. } => {}
            }
            let ok = matches!(
                roundtrip(slot.addr(), "{\"id\":\"hc\",\"cmd\":\"ping\"}", shared.health_timeout),
                Ok(line) if line.contains("\"status\":\"pong\"")
            );
            let now = Instant::now();
            if ok {
                slot.breaker.record_success(now);
            } else {
                slot.breaker.record_failure(now);
            }
        }
    }
}

/// The respawn supervisor: scans for dead slots and adopts a fresh
/// daemon into each, generation-bumped, breaker re-armed in probation,
/// cache warmed from ring successors. Attempts are paced by a
/// deterministic seeded [`Backoff`] (rung = slot index, attempt = the
/// slot's respawn count) and budgeted by `max_respawns` per slot; an
/// exhausted slot stays dead. A scheduled [`SelfHealFault::RespawnStorm`]
/// kills the replacement on arrival — the supervisor then observes the
/// death and tries again, which is exactly the storm the chaos sweep
/// pins down as convergent.
fn supervisor_loop(shared: &Arc<Shared>) {
    let backoff = Backoff {
        base: Duration::from_millis(50),
        cap: Duration::from_secs(2),
        seed: shared.ring_seed,
    };
    let mut attempts: HashMap<usize, u32> = HashMap::new();
    let mut next_try: HashMap<usize, Instant> = HashMap::new();
    while !shared.is_draining() {
        std::thread::sleep(Duration::from_millis(25));
        let workers = shared.worker_snapshot();
        for (i, slot) in workers.iter().enumerate() {
            if slot.state() != WorkerState::Dead {
                continue;
            }
            let used = *attempts.get(&i).unwrap_or(&0);
            if used >= shared.max_respawns {
                continue;
            }
            let now = Instant::now();
            if next_try.get(&i).is_some_and(|&t| now < t) {
                continue;
            }
            attempts.insert(i, used + 1);
            next_try.insert(i, now + backoff.delay(i, used as usize + 1));
            let config = ServiceConfig {
                addr: "127.0.0.1:0".to_owned(),
                ..shared.worker_template.clone()
            };
            let Ok(service) = Service::start(config) else {
                continue; // retry after the backoff window
            };
            match slot.adopt(service) {
                Ok(generation) => {
                    ClusterStats::bump(&shared.stats.respawns);
                    // Probation, not a fresh breaker: the newcomer must
                    // earn its way back with one successful trial.
                    slot.breaker.arm_probation(Instant::now());
                    rebuild_ring(shared);
                    warm_newcomer(shared, i);
                    if shared.chaos.fault_for_respawn(i, generation)
                        == Some(SelfHealFault::RespawnStorm)
                    {
                        ClusterStats::bump(&shared.stats.chaos_respawn_storms);
                        slot.kill();
                    }
                }
                Err(orphan) => {
                    // The slot was revived by someone else (or never
                    // died); stop the orphan daemon cleanly.
                    orphan.handle().shutdown();
                    let _ = orphan.join();
                }
            }
        }
    }
}

/// Rebuilds the ring over the full (append-only) membership. After a
/// respawn the membership is unchanged, so this restores placement
/// verbatim — the respawned slot owns exactly the keys it owned before.
fn rebuild_ring(shared: &Arc<Shared>) {
    let members: Vec<usize> = (0..shared.worker_snapshot().len()).collect();
    shared
        .ring
        .write()
        .unwrap_or_else(PoisonError::into_inner)
        .rebuild(&members);
    // A topology (or generation) change invalidates the repair memory:
    // the new owner of any key may be cold again.
    shared
        .repaired
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();
}

/// Warms a respawned worker's cold cache from its ring successors: for
/// every remembered frame the newcomer owns, probe the other walk
/// members for the entry and `put` the first hit to the newcomer. The
/// receiving daemon re-validates through the certified-store gate, so a
/// stale or damaged entry cannot poison the fresh cache.
fn warm_newcomer(shared: &Arc<Shared>, idx: usize) {
    let recent: Vec<(u64, String)> = shared
        .recent
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    if recent.is_empty() {
        return;
    }
    let workers = shared.worker_snapshot();
    let newcomer = &workers[idx];
    for (_, line) in recent {
        let Ok(request) = parse_request(&line) else {
            continue;
        };
        let Ok(key) = request_key(&request) else {
            continue;
        };
        let walk = shared.walk_for(key.halves());
        if walk.first() != Some(&idx) {
            continue;
        }
        let Some(frame) = Json::parse(&line) else {
            continue;
        };
        let probe_line = rewrite(
            &frame,
            &[
                ("cmd", Json::Str("probe".to_owned())),
                ("want_entry", Json::Bool(true)),
            ],
        );
        for &j in &walk {
            if j == idx || !workers[j].is_probeable() {
                continue;
            }
            let Ok(resp) = roundtrip(workers[j].addr(), &probe_line, shared.probe_timeout) else {
                continue;
            };
            let Some(parsed) = Json::parse(&resp) else {
                continue;
            };
            if parsed.get("status").and_then(Json::as_str) != Some("ok") {
                continue;
            }
            let Some(entry) = parsed.get("entry") else {
                continue;
            };
            let put_line = rewrite(
                &frame,
                &[
                    ("cmd", Json::Str("put".to_owned())),
                    ("entry", entry.clone()),
                ],
            );
            if matches!(
                roundtrip(newcomer.addr(), &put_line, shared.probe_timeout),
                Ok(r) if r.contains("\"status\":\"ok\"")
            ) {
                ClusterStats::bump(&shared.stats.warmed);
            }
            break;
        }
    }
}

/// Replays the journal's incomplete entries through normal dispatch.
/// Each replayed request reaches a terminal outcome (its response is
/// tagged `TS008` on the way through `annotate`) and is then marked
/// completed; the original client is gone, so the response itself is
/// discarded — the point is that the accepted work happens and the
/// cache warms, never that a ghost client hears back.
fn replay_journal(shared: &Arc<Shared>, entries: Vec<JournalEntry>) {
    for entry in entries {
        if shared.is_draining() {
            return;
        }
        if let Ok(request) = parse_request(&entry.frame) {
            if request.cmd == Cmd::Synth {
                ClusterStats::bump(&shared.stats.journal_replays);
                let _ = dispatch_synth(&entry.frame, &request, shared, true);
            }
        }
        // Unparseable or non-synth frames are terminal by definition.
        if let Some(journal) = &shared.journal {
            journal.completed(entry.seq);
        }
    }
}

/// Reads frames off one router connection (same bounded-frame contract
/// as the daemon: `MAX_LINE`, slowloris deadline, one response per
/// request).
fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let mut stream = stream;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut frame_start: Option<Instant> = None;
    loop {
        while let Some(nl) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=nl).collect();
            frame_start = if buf.is_empty() {
                None
            } else {
                Some(Instant::now())
            };
            let line = String::from_utf8_lossy(&line[..nl]).into_owned();
            if line.trim().is_empty() {
                continue;
            }
            match serve_line(&line, shared, &mut stream) {
                LineVerdict::KeepGoing => {}
                LineVerdict::Close => return,
            }
        }
        if shared.is_draining() {
            return;
        }
        if buf.len() > MAX_LINE {
            let reject = Response::reject(
                None,
                RejectKind::Malformed,
                format!("frame exceeds the {MAX_LINE}-byte line limit"),
            );
            ClusterStats::bump(&shared.stats.malformed);
            let _ = write_line(&mut stream, &reject.render_with(&shared.stats_json()));
            return;
        }
        if let Some(t0) = frame_start {
            if t0.elapsed() > shared.frame_deadline {
                let reject = Response::reject(
                    None,
                    RejectKind::Malformed,
                    format!(
                        "partial frame: no newline within {:?} of the first byte",
                        shared.frame_deadline
                    ),
                );
                ClusterStats::bump(&shared.stats.malformed);
                let _ = write_line(&mut stream, &reject.render_with(&shared.stats_json()));
                return;
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => {
                if buf.is_empty() && frame_start.is_none() {
                    frame_start = Some(Instant::now());
                }
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => return,
        }
    }
}

enum LineVerdict {
    KeepGoing,
    Close,
}

/// Parses and routes one frame, writing exactly one response line. An
/// accepted `synth` is journaled before dispatch and marked completed
/// after its response line is written (or the client proved gone), so a
/// router crash in between replays it on restart.
fn serve_line(line: &str, shared: &Arc<Shared>, stream: &mut TcpStream) -> LineVerdict {
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(msg) => {
            ClusterStats::bump(&shared.stats.malformed);
            let reject = Response::reject(None, RejectKind::Malformed, msg);
            let _ = write_line(stream, &reject.render_with(&shared.stats_json()));
            return LineVerdict::Close;
        }
    };
    let journal_seq = match (&shared.journal, request.cmd) {
        (Some(journal), Cmd::Synth) => {
            ClusterStats::bump(&shared.stats.journal_appends);
            let seq = journal.accepted(line);
            if shared.chaos.fault_for_journal_append(seq) == Some(SelfHealFault::JournalTorn) {
                ClusterStats::bump(&shared.stats.chaos_journal_torn);
            }
            Some(seq)
        }
        _ => None,
    };
    let id = request.id.clone();
    let close_after = request.cmd == Cmd::Shutdown;
    let rendered = match catch_unwind(AssertUnwindSafe(|| route(line, &request, shared))) {
        Ok(rendered) => rendered,
        Err(payload) => {
            let detail = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
                .unwrap_or_else(|| "opaque panic payload".to_owned());
            let reject = Response::reject(
                Some(&id),
                RejectKind::Internal,
                format!("router panicked: {detail}"),
            );
            reject.render_with(&shared.stats_json())
        }
    };
    let write_ok = write_line(stream, &rendered).is_ok();
    if let (Some(journal), Some(seq)) = (&shared.journal, journal_seq) {
        // A failed write means the client hung up — the request still
        // reached its terminal outcome; only a router crash may leave
        // an entry pending.
        journal.completed(seq);
    }
    if !write_ok || close_after {
        LineVerdict::Close
    } else {
        LineVerdict::KeepGoing
    }
}

fn write_line(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    let mut out = String::with_capacity(line.len() + 1);
    out.push_str(line);
    out.push('\n');
    stream.write_all(out.as_bytes())
}

/// Routes one parsed request and returns the fully rendered response
/// line (local responses carry the cluster `stats` trailer; relayed
/// worker responses have it substituted in).
fn route(line: &str, request: &Request, shared: &Arc<Shared>) -> String {
    match request.cmd {
        Cmd::Ping => Response::outcome(&request.id, "pong").render_with(&shared.stats_json()),
        Cmd::Stats => Response::outcome(&request.id, "ok").render_with(&shared.stats_json()),
        Cmd::Shutdown => {
            shared.draining.store(true, Ordering::SeqCst);
            let mut r = Response::outcome(&request.id, "ok");
            r.message = Some("draining: the cluster no longer accepts requests".to_owned());
            r.render_with(&shared.stats_json())
        }
        Cmd::Synth => dispatch_synth(line, request, shared, false),
        Cmd::Probe => dispatch_probe(line, request, shared),
        Cmd::Put => dispatch_put(line, request, shared),
    }
}

/// Relay tags for [`annotate`]: which diagnostics the served response
/// must gain on the way out.
#[derive(Clone, Copy)]
struct Tags<'a> {
    /// Serving worker's stable name (for reject/error attribution).
    worker: &'a str,
    /// A non-owner served, or at least one candidate failed over (TS005).
    failover: bool,
    /// The serving worker is a respawned generation (TS007).
    respawned: bool,
    /// The request came back off the dispatch journal (TS008).
    replayed: bool,
}

/// Full routing pipeline for one `synth` (see the module docs).
fn dispatch_synth(line: &str, request: &Request, shared: &Arc<Shared>, replayed: bool) -> String {
    ClusterStats::bump(&shared.stats.requests);
    let key = match request_key(request) {
        Ok(k) => k,
        Err(msg) => {
            ClusterStats::bump(&shared.stats.routed_error);
            return Response::reject(Some(&request.id), RejectKind::BadRequest, msg)
                .render_with(&shared.stats_json());
        }
    };
    remember_frame(shared, key.halves().0, line);
    let deadline = request.deadline.unwrap_or(shared.default_deadline);
    let t_end = Instant::now() + deadline;
    // Ring before workers: membership is append-only and `add_worker`
    // pushes the slot before rebuilding the ring, so reading in this
    // order guarantees every walked index resolves to a slot.
    let walk = shared.walk_for(key.halves());
    let workers = shared.worker_snapshot();
    let owner = walk.first().copied();
    // The raw frame re-parsed as JSON so the forwarded copies (probe
    // command, rewritten deadline) preserve every original field.
    let Some(frame) = Json::parse(line) else {
        // parse_request accepted it, so this cannot happen; shed typed.
        ClusterStats::bump(&shared.stats.routed_error);
        return Response::reject(Some(&request.id), RejectKind::Internal, "unroutable frame")
            .render_with(&shared.stats_json());
    };
    let replicating = shared.replication > 1;

    // Peer cache tier: probe other workers' caches before spending a
    // solver anywhere. The predicted dispatch head is excluded — it
    // will consult its own cache inline when the synth arrives. With
    // replication on, probes ask for the raw entry so a hit on a
    // non-owner can be read-repaired back to the live owner.
    let head = walk
        .iter()
        .copied()
        .find(|&i| workers[i].is_dispatchable() && !workers[i].breaker.is_open(Instant::now()));
    let probe_line = if replicating {
        rewrite(
            &frame,
            &[
                ("cmd", Json::Str("probe".to_owned())),
                ("want_entry", Json::Bool(true)),
            ],
        )
    } else {
        with_cmd(&frame, "probe")
    };
    let probe_targets: Vec<usize> = walk
        .iter()
        .copied()
        .filter(|&i| Some(i) != head && workers[i].is_probeable())
        .take(shared.probe_depth)
        .collect();
    for i in probe_targets {
        ClusterStats::bump(&shared.stats.probes);
        let slot = &workers[i];
        match roundtrip(slot.addr(), &probe_line, shared.probe_timeout) {
            Ok(resp) => {
                slot.breaker.record_success(Instant::now());
                let parsed = Json::parse(&resp);
                if parsed
                    .as_ref()
                    .and_then(|j| j.get("status"))
                    .and_then(Json::as_str)
                    == Some("ok")
                {
                    ClusterStats::bump(&shared.stats.probe_hits);
                    ClusterStats::bump(&shared.stats.routed_ok);
                    if let Some(parsed) = &parsed {
                        read_repair(shared, &frame, key.halves().0, &walk, &workers, i, parsed);
                    }
                    // A cache-tier hit is only a *failover* when the
                    // owner could not have served (dead, demoted, or
                    // breaker-open); with a healthy owner, serving from
                    // a warm peer is the shared cache tier working —
                    // and the response stays byte-identical to the
                    // owner's own answer.
                    let failover = head != owner && Some(i) != owner;
                    let tags = Tags {
                        worker: &slot.name,
                        failover,
                        respawned: slot.generation() > 0,
                        replayed,
                    };
                    if let Some(out) = annotate(&resp, tags, shared) {
                        return out;
                    }
                }
            }
            Err(_) => slot.breaker.record_failure(Instant::now()),
        }
    }

    // Dispatch with failover: walk order, live workers whose breaker
    // admits, one attempt each, remaining deadline carried forward.
    let mut attempt = 0usize;
    let mut failovers = 0usize;
    let mut attempted_any = false;
    let mut reject_hints: Vec<Duration> = Vec::new();
    for &i in &walk {
        let slot = &workers[i];
        if !slot.is_dispatchable() {
            continue;
        }
        match slot.breaker.admit(Instant::now()) {
            BreakerDecision::Reject { retry_after } => {
                reject_hints.push(retry_after);
                continue;
            }
            BreakerDecision::Admit { .. } => {}
        }
        attempted_any = true;
        let mut remaining = t_end.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return deadline_error(request, failovers, shared);
        }
        // Chaos: dispatch-site fault injection. Kill, partition and
        // torn-frame all consume this candidate (the transport failed);
        // a stall only delays it.
        match shared.chaos.fault_for_dispatch(i, key.halves().0, attempt) {
            Some(ClusterFault::WorkerKill) => {
                ClusterStats::bump(&shared.stats.chaos_kills);
                slot.kill();
                slot.breaker.record_failure(Instant::now());
                failovers += 1;
                ClusterStats::bump(&shared.stats.failovers);
                attempt += 1;
                continue;
            }
            Some(ClusterFault::Partition) => {
                ClusterStats::bump(&shared.stats.chaos_partitions);
                slot.breaker.record_failure(Instant::now());
                failovers += 1;
                ClusterStats::bump(&shared.stats.failovers);
                attempt += 1;
                continue;
            }
            Some(ClusterFault::TornFrame) => {
                ClusterStats::bump(&shared.stats.chaos_torn);
                send_torn_frame(slot.addr(), &with_deadline(&frame, remaining, false));
                slot.breaker.record_failure(Instant::now());
                failovers += 1;
                ClusterStats::bump(&shared.stats.failovers);
                attempt += 1;
                continue;
            }
            Some(ClusterFault::WorkerStall(d)) => {
                ClusterStats::bump(&shared.stats.chaos_stalls);
                std::thread::sleep(d.min(remaining));
                remaining = t_end.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return deadline_error(request, failovers, shared);
                }
            }
            None => {}
        }
        attempt += 1;
        let dispatch_line = with_deadline(&frame, remaining, replicating);
        if let Ok(resp) = roundtrip(
            slot.addr(),
            &dispatch_line,
            remaining + shared.dispatch_grace,
        ) {
            let Some(parsed) = Json::parse(&resp) else {
                // A garbled frame is transport failure, not truth.
                slot.breaker.record_failure(Instant::now());
                failovers += 1;
                ClusterStats::bump(&shared.stats.failovers);
                continue;
            };
            slot.breaker.record_success(Instant::now());
            let status = parsed.get("status").and_then(Json::as_str).unwrap_or("");
            match status {
                "ok" | "degraded" | "miss" => ClusterStats::bump(&shared.stats.routed_ok),
                "error" => ClusterStats::bump(&shared.stats.routed_error),
                _ => ClusterStats::bump(&shared.stats.relayed_rejects),
            }
            if status == "ok" {
                // Write-behind: copy the (fresh or cache-served)
                // un-degraded entry to the next R−1 ring successors.
                replicate(shared, &frame, key.halves().0, &walk, &workers, i, &parsed);
            }
            let failover = failovers > 0 || Some(i) != owner;
            let tags = Tags {
                worker: &slot.name,
                failover,
                respawned: slot.generation() > 0,
                replayed,
            };
            if let Some(out) = annotate(&resp, tags, shared) {
                return out;
            }
            // Unannotatable yet parseable cannot happen (annotate only
            // fails on non-objects); relay verbatim as a last resort
            // rather than dropping the request.
            return resp;
        }
        slot.breaker.record_failure(Instant::now());
        failovers += 1;
        ClusterStats::bump(&shared.stats.failovers);
    }

    if attempted_any {
        // Every admitted candidate failed mid-flight: a typed error, so
        // the client knows work may have been attempted.
        ClusterStats::bump(&shared.stats.routed_error);
        let mut r = Response::reject(
            Some(&request.id),
            RejectKind::Failed,
            "every live worker failed during dispatch",
        );
        if failovers > 0 {
            r.codes.push(Code::WorkerFailover.as_str().to_owned());
        }
        return r.render_with(&shared.stats_json());
    }

    // Nothing was even admitted: the explicit cluster shed. The retry
    // hint comes from the workers' breakers where one exists.
    ClusterStats::bump(&shared.stats.sheds);
    let mut r = Response::reject(
        Some(&request.id),
        RejectKind::Unavailable,
        "no live worker could accept the request",
    );
    let hint = reject_hints
        .iter()
        .min()
        .copied()
        .unwrap_or(Duration::from_millis(100));
    r.retry_after_ms = Some(hint.as_millis().max(1) as u64);
    r.codes = vec![Code::ClusterUnavailable.as_str().to_owned()];
    r.render_with(&shared.stats_json())
}

/// Remembers one dispatched frame per cache key (bounded FIFO) — the
/// supervisor's warm list for respawned workers.
fn remember_frame(shared: &Arc<Shared>, key_low: u64, line: &str) {
    let mut recent = shared.recent.lock().unwrap_or_else(PoisonError::into_inner);
    if recent.iter().any(|(k, _)| *k == key_low) {
        return;
    }
    if recent.len() >= RECENT_CAP {
        recent.remove(0);
    }
    recent.push((key_low, line.to_owned()));
}

/// Write-behind replication: copy the serving worker's entry to the
/// next `replication − 1` probeable walk members, in the background.
/// Each target is subject to a seeded [`SelfHealFault::ReplicaDrop`].
fn replicate(
    shared: &Arc<Shared>,
    frame: &Json,
    key_low: u64,
    walk: &[usize],
    workers: &[Arc<WorkerSlot>],
    served_by: usize,
    parsed: &Json,
) {
    if shared.replication <= 1 {
        return;
    }
    let Some(entry) = parsed.get("entry") else {
        return; // the worker sent no entry (degraded path, old frame)
    };
    let mut targets: Vec<(usize, SocketAddr)> = Vec::new();
    for &j in walk {
        if targets.len() + 1 >= shared.replication {
            break;
        }
        if j == served_by || !workers[j].is_probeable() {
            continue;
        }
        targets.push((j, workers[j].addr()));
    }
    if targets.is_empty() {
        return;
    }
    let put_line = rewrite(
        frame,
        &[
            ("cmd", Json::Str("put".to_owned())),
            ("entry", entry.clone()),
        ],
    );
    spawn_puts(shared, put_line, targets, key_low, false);
}

/// Read-repair: a probe hit on a non-owner puts the entry back to the
/// live owner in the background, restoring ownership locality.
fn read_repair(
    shared: &Arc<Shared>,
    frame: &Json,
    key_low: u64,
    walk: &[usize],
    workers: &[Arc<WorkerSlot>],
    hit_on: usize,
    parsed: &Json,
) {
    if shared.replication <= 1 {
        return;
    }
    let Some(&owner) = walk.first() else {
        return;
    };
    if owner == hit_on || !workers[owner].is_probeable() {
        return;
    }
    let Some(entry) = parsed.get("entry") else {
        return;
    };
    {
        // Repair each key at most once per ring epoch: after the first
        // put lands the owner is warm, and re-putting on every replica
        // hit would cost a thread and an fsync per hot request.
        let mut repaired = shared
            .repaired
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if repaired.contains(&key_low) {
            return;
        }
        if repaired.len() >= RECENT_CAP {
            repaired.remove(0);
        }
        repaired.push(key_low);
    }
    let put_line = rewrite(
        frame,
        &[
            ("cmd", Json::Str("put".to_owned())),
            ("entry", entry.clone()),
        ],
    );
    spawn_puts(
        shared,
        put_line,
        vec![(owner, workers[owner].addr())],
        key_low,
        true,
    );
}

/// Fires `put` frames at the targets on a background thread (this is
/// the *behind* in write-behind: the client's response never waits on
/// replication). Dropped targets count `chaos_replica_drops`; stored
/// copies count `replicas_put` or `read_repairs`.
fn spawn_puts(
    shared: &Arc<Shared>,
    put_line: String,
    targets: Vec<(usize, SocketAddr)>,
    key_low: u64,
    repair: bool,
) {
    let shared = Arc::clone(shared);
    std::thread::spawn(move || {
        for (i, addr) in targets {
            if shared.is_draining() {
                return;
            }
            if shared.chaos.fault_for_replication(i, key_low) == Some(SelfHealFault::ReplicaDrop) {
                ClusterStats::bump(&shared.stats.chaos_replica_drops);
                continue;
            }
            if matches!(
                roundtrip(addr, &put_line, shared.probe_timeout),
                Ok(resp) if resp.contains("\"status\":\"ok\"")
            ) {
                if repair {
                    ClusterStats::bump(&shared.stats.read_repairs);
                } else {
                    ClusterStats::bump(&shared.stats.replicas_put);
                }
            }
        }
    });
}

/// A client-facing `probe`: consult every non-dead worker's cache in
/// walk order; the first hit is relayed, otherwise `miss`.
fn dispatch_probe(line: &str, request: &Request, shared: &Arc<Shared>) -> String {
    ClusterStats::bump(&shared.stats.requests);
    let key = match request_key(request) {
        Ok(k) => k,
        Err(msg) => {
            ClusterStats::bump(&shared.stats.routed_error);
            return Response::reject(Some(&request.id), RejectKind::BadRequest, msg)
                .render_with(&shared.stats_json());
        }
    };
    // Ring before workers (see dispatch_synth): every walked index
    // then resolves to a slot.
    let walk = shared.walk_for(key.halves());
    let workers = shared.worker_snapshot();
    let owner = walk.first().copied();
    for &i in &walk {
        let slot = &workers[i];
        if !slot.is_probeable() {
            continue;
        }
        ClusterStats::bump(&shared.stats.probes);
        match roundtrip(slot.addr(), line, shared.probe_timeout) {
            Ok(resp) => {
                slot.breaker.record_success(Instant::now());
                let parsed = Json::parse(&resp);
                if parsed
                    .as_ref()
                    .and_then(|j| j.get("status"))
                    .and_then(Json::as_str)
                    == Some("ok")
                {
                    ClusterStats::bump(&shared.stats.probe_hits);
                    ClusterStats::bump(&shared.stats.routed_ok);
                    if let (Some(parsed), Some(frame)) = (&parsed, Json::parse(line)) {
                        read_repair(shared, &frame, key.halves().0, &walk, &workers, i, parsed);
                    }
                    let tags = Tags {
                        worker: &slot.name,
                        failover: Some(i) != owner,
                        respawned: slot.generation() > 0,
                        replayed: false,
                    };
                    if let Some(out) = annotate(&resp, tags, shared) {
                        return out;
                    }
                }
            }
            Err(_) => slot.breaker.record_failure(Instant::now()),
        }
    }
    ClusterStats::bump(&shared.stats.routed_ok);
    Response::outcome(&request.id, "miss").render_with(&shared.stats_json())
}

/// A client-facing `put`: store the replicated entry on the key's first
/// `replication` probeable walk members (each worker re-validates the
/// entry itself). The first worker's response is relayed; a rejection
/// is terminal — the entry failed the certified-store gate and must not
/// be offered to anyone else.
fn dispatch_put(line: &str, request: &Request, shared: &Arc<Shared>) -> String {
    ClusterStats::bump(&shared.stats.requests);
    let key = match request_key(request) {
        Ok(k) => k,
        Err(msg) => {
            ClusterStats::bump(&shared.stats.routed_error);
            return Response::reject(Some(&request.id), RejectKind::BadRequest, msg)
                .render_with(&shared.stats_json());
        }
    };
    let walk = shared.walk_for(key.halves());
    let workers = shared.worker_snapshot();
    let copies = shared.replication.max(1);
    let mut relayed: Option<(String, String)> = None;
    let mut stored = 0usize;
    for &i in &walk {
        if stored >= copies {
            break;
        }
        let slot = &workers[i];
        if !slot.is_probeable() {
            continue;
        }
        match roundtrip(slot.addr(), line, shared.probe_timeout) {
            Ok(resp) => {
                slot.breaker.record_success(Instant::now());
                stored += 1;
                let status = Json::parse(&resp)
                    .as_ref()
                    .and_then(|j| j.get("status"))
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_owned();
                let rejected = status != "ok";
                if relayed.is_none() {
                    let tags = Tags {
                        worker: &slot.name,
                        failover: false,
                        respawned: slot.generation() > 0,
                        replayed: false,
                    };
                    if let Some(out) = annotate(&resp, tags, shared) {
                        relayed = Some((status, out));
                    }
                }
                if rejected {
                    break;
                }
            }
            Err(_) => slot.breaker.record_failure(Instant::now()),
        }
    }
    if let Some((status, out)) = relayed {
        if status == "ok" {
            ClusterStats::bump(&shared.stats.routed_ok);
        } else {
            ClusterStats::bump(&shared.stats.relayed_rejects);
        }
        return out;
    }
    ClusterStats::bump(&shared.stats.sheds);
    let mut r = Response::reject(
        Some(&request.id),
        RejectKind::Unavailable,
        "no live worker could store the entry",
    );
    r.retry_after_ms = Some(100);
    r.codes = vec![Code::ClusterUnavailable.as_str().to_owned()];
    r.render_with(&shared.stats_json())
}

/// The typed deadline error for a request whose budget ran out while
/// the router was still trying candidates.
fn deadline_error(request: &Request, failovers: usize, shared: &Arc<Shared>) -> String {
    ClusterStats::bump(&shared.stats.routed_error);
    let mut r = Response::reject(
        Some(&request.id),
        RejectKind::Deadline,
        "deadline exhausted during cluster dispatch",
    );
    r.codes
        .push(Code::RequestDeadlineExhausted.as_str().to_owned());
    if failovers > 0 {
        r.codes.push(Code::WorkerFailover.as_str().to_owned());
    }
    r.render_with(&shared.stats_json())
}

/// One full request/response round trip against a worker: connect,
/// send the frame, read one line within `budget`.
fn roundtrip(addr: SocketAddr, line: &str, budget: Duration) -> std::io::Result<String> {
    let t_end = Instant::now() + budget;
    let mut stream = TcpStream::connect_timeout(&addr, budget.min(Duration::from_secs(1)))?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_millis(50)))?;
    let mut out = String::with_capacity(line.len() + 1);
    out.push_str(line);
    out.push('\n');
    stream.write_all(out.as_bytes())?;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(nl) = buf.iter().position(|&b| b == b'\n') {
            return Ok(String::from_utf8_lossy(&buf[..nl]).into_owned());
        }
        if Instant::now() >= t_end {
            return Err(std::io::Error::new(
                ErrorKind::TimedOut,
                "no response line within the dispatch budget",
            ));
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "worker closed before responding",
                ))
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) => return Err(e),
        }
    }
}

/// The torn-frame chaos fault: deliver roughly half the frame, no
/// newline, then slam the connection shut.
fn send_torn_frame(addr: SocketAddr, line: &str) {
    if let Ok(mut stream) = TcpStream::connect_timeout(&addr, Duration::from_millis(200)) {
        let torn = &line.as_bytes()[..line.len() / 2];
        let _ = stream.write_all(torn);
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
}

/// Re-renders the original frame with `cmd` replaced (field order and
/// everything else preserved).
fn with_cmd(frame: &Json, cmd: &str) -> String {
    rewrite(frame, &[("cmd", Json::Str(cmd.to_owned()))])
}

/// Re-renders the original frame with `deadline_ms` set to the
/// remaining budget — failover re-dispatch never restarts the clock —
/// and, when replication wants the entry back, `want_entry` asserted.
fn with_deadline(frame: &Json, remaining: Duration, want_entry: bool) -> String {
    let ms = (remaining.as_millis() as u64).max(1);
    if want_entry {
        rewrite(
            frame,
            &[
                ("deadline_ms", Json::Num(ms)),
                ("want_entry", Json::Bool(true)),
            ],
        )
    } else {
        rewrite(frame, &[("deadline_ms", Json::Num(ms))])
    }
}

/// Re-renders a frame with the given fields replaced (or appended),
/// preserving the order of everything already present.
fn rewrite(frame: &Json, changes: &[(&str, Json)]) -> String {
    let mut frame = frame.clone();
    if let Json::Obj(fields) = &mut frame {
        for (key, value) in changes {
            match fields.iter_mut().find(|(k, _)| k == key) {
                Some(slot) => slot.1 = value.clone(),
                None => fields.push(((*key).to_owned(), value.clone())),
            }
        }
    }
    frame.render()
}

/// Relay surgery on a worker response line: substitute the cluster's
/// `stats` trailer, strip the internal `entry` payload (it exists for
/// the router's replication machinery, never for clients), tag
/// rejections/errors with the serving worker's name, and append the
/// routing diagnostics — `TS005` when a non-owner served, `TS007` when
/// the serving worker is a respawned generation, `TS008` when the
/// request was replayed from the dispatch journal. Field order is
/// preserved so relayed responses stay byte-comparable with
/// single-daemon ones (modulo exactly these fields).
fn annotate(resp: &str, tags: Tags<'_>, shared: &Arc<Shared>) -> Option<String> {
    let mut json = Json::parse(resp)?;
    let Json::Obj(fields) = &mut json else {
        return None;
    };
    fields.retain(|(k, _)| k != "entry");
    let status = fields
        .iter()
        .find(|(k, _)| k == "status")
        .and_then(|(_, v)| v.as_str())
        .unwrap_or("")
        .to_owned();
    let mut extra: Vec<&str> = Vec::new();
    if tags.failover {
        extra.push(Code::WorkerFailover.as_str());
    }
    if tags.respawned {
        extra.push(Code::WorkerRespawned.as_str());
    }
    if tags.replayed {
        extra.push(Code::JournalReplayed.as_str());
    }
    for code in extra {
        let value = Json::Str(code.to_owned());
        if let Some((_, Json::Arr(codes))) = fields.iter_mut().find(|(k, _)| k == "codes") {
            if !codes.iter().any(|c| c.as_str() == Some(code)) {
                codes.push(value);
            }
        } else {
            let at = fields
                .iter()
                .position(|(k, _)| k == "stats")
                .unwrap_or(fields.len());
            fields.insert(at, ("codes".to_owned(), Json::Arr(vec![value])));
        }
    }
    if matches!(status.as_str(), "rejected" | "error") {
        let at = fields
            .iter()
            .position(|(k, _)| k == "stats")
            .unwrap_or(fields.len());
        fields.insert(at, ("worker".to_owned(), Json::Str(tags.worker.to_owned())));
    }
    let stats = Json::parse(&shared.stats_json())?;
    match fields.iter_mut().find(|(k, _)| k == "stats") {
        Some(slot) => slot.1 = stats,
        None => fields.push(("stats".to_owned(), stats)),
    }
    Some(json.render())
}
