//! `troy-cluster`: a sharded multi-daemon synthesis cluster.
//!
//! The paper's run-time protection loop assumes re-synthesis stays
//! available even while individual machines misbehave; `troy-service`
//! hardened one daemon, and this crate scales that contract out to a
//! fleet. A [`Cluster`] is a TCP router speaking the exact daemon
//! protocol in front of N worker daemons, sharding by the portfolio's
//! content-addressed request keys on a seeded consistent-hash ring:
//!
//! - **Shared cache tier** — the key-owning worker's cache is always
//!   consulted, and workers answer cache lookups for each other over
//!   the wire (`cmd: "probe"`), so a rebalance or demotion never
//!   re-spends solved work.
//! - **Health-checked breakers** — periodic pings plus dispatch error
//!   rate feed one rationed circuit breaker per worker; a sick worker
//!   is demoted from dispatch (and promoted back by a single half-open
//!   trial) without dropping anything in flight.
//! - **Failover re-dispatch** — a dead or partitioned worker's requests
//!   are re-hashed to the next live worker on the ring with the
//!   *remaining* deadline intact, tagged `TS005`.
//! - **Typed shed** — with no admissible worker the router rejects
//!   `unavailable` + `TS006` with a `retry_after_ms` hint; worker-side
//!   overload rejections are relayed with *their* hints verbatim.
//!
//! And the self-healing layers on top:
//!
//! - **Generation-aware respawn** — a supervisor revives dead slots
//!   with a fresh daemon under a bumped generation (`TS007` on served
//!   responses), breaker re-armed in probation, cache warmed from ring
//!   successors, paced by deterministic seeded backoff and a
//!   `max_respawns` budget.
//! - **Successor cache replication** — fresh un-degraded results are
//!   written behind (`cmd: "put"`) to the next R−1 ring successors, and
//!   a probe hit on a non-owner is read-repaired back to the owner;
//!   every put re-validates through the certified-store gate, so
//!   killing a key's owner costs zero re-solves and replication can
//!   never poison a cache.
//! - **Durable dispatch journal** — accepted `synth` frames go through
//!   an append-only checksummed WAL ([`Journal`]); on restart every
//!   entry without a terminal outcome is replayed through normal
//!   dispatch (`TS008`), so a router crash loses nothing it accepted.
//!
//! The cluster-level chaos contract (pinned by this crate's soak tests
//! under seeded worker-kill/stall/partition/torn-frame faults): every
//! accepted request terminates with a valid certified result, a typed
//! error, or an explicit shed — no request is silently lost, and
//! routed answers are identical to a single daemon's for the same key.
//!
//! Start one with [`Cluster::start`], or from the CLI via
//! `troyhls cluster`.

pub mod journal;
pub mod ring;
pub mod router;
pub mod stats;
pub mod worker;

pub use journal::{Journal, JournalEntry};
pub use ring::{Ring, Walk};
pub use router::{Cluster, ClusterConfig, ClusterHandle};
pub use stats::{ClusterSnapshot, ClusterStats};
pub use worker::{WorkerSlot, WorkerState};
