//! Router-path counters, reported in every response's `stats` trailer.
//!
//! The router substitutes its own counters for the worker's in every
//! relayed response, so a client always sees cluster-level health in the
//! same frame position a single daemon reports its own.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared atomic counters for the cluster router. All increments are
/// relaxed — monotonic telemetry, not synchronization.
#[derive(Debug, Default)]
pub struct ClusterStats {
    /// Connections accepted by the router.
    pub connections: AtomicU64,
    /// Routable requests received (`synth` + `probe` + `put`).
    pub requests: AtomicU64,
    /// Requests relayed with an `ok`, `degraded` or `miss` outcome.
    pub routed_ok: AtomicU64,
    /// Requests relayed with (or terminated by) a typed `error`.
    pub routed_error: AtomicU64,
    /// Worker rejections (overload, draining…) relayed to the client.
    pub relayed_rejects: AtomicU64,
    /// Requests shed by the router itself: no live worker could accept
    /// (`unavailable` + TS006).
    pub sheds: AtomicU64,
    /// Peer cache probes sent to workers.
    pub probes: AtomicU64,
    /// Peer cache probes answered with a hit.
    pub probe_hits: AtomicU64,
    /// Dispatch attempts re-hashed to a backup worker after a transport
    /// failure or injected fault.
    pub failovers: AtomicU64,
    /// Lines that failed protocol parsing at the router.
    pub malformed: AtomicU64,
    /// Dead slots revived by the supervisor (generation bumps).
    pub respawns: AtomicU64,
    /// Entries replicated to ring successors by write-behind.
    pub replicas_put: AtomicU64,
    /// Entries put back to the key's owner after a non-owner probe hit.
    pub read_repairs: AtomicU64,
    /// Entries warmed into a respawned worker's cold cache.
    pub warmed: AtomicU64,
    /// Accepted `synth` frames appended to the dispatch journal.
    pub journal_appends: AtomicU64,
    /// Journal entries replayed through dispatch after a restart.
    pub journal_replays: AtomicU64,
    /// Injected worker-kill faults.
    pub chaos_kills: AtomicU64,
    /// Injected network-partition faults.
    pub chaos_partitions: AtomicU64,
    /// Injected torn-frame faults.
    pub chaos_torn: AtomicU64,
    /// Injected worker-stall faults.
    pub chaos_stalls: AtomicU64,
    /// Injected respawn-storm faults (the replacement died on arrival).
    pub chaos_respawn_storms: AtomicU64,
    /// Injected replica-drop faults (a write-behind copy was lost).
    pub chaos_replica_drops: AtomicU64,
    /// Injected torn journal appends.
    pub chaos_journal_torn: AtomicU64,
}

impl ClusterStats {
    /// Relaxed increment helper.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy for rendering.
    #[must_use]
    pub fn snapshot(&self) -> ClusterSnapshot {
        ClusterSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            routed_ok: self.routed_ok.load(Ordering::Relaxed),
            routed_error: self.routed_error.load(Ordering::Relaxed),
            relayed_rejects: self.relayed_rejects.load(Ordering::Relaxed),
            sheds: self.sheds.load(Ordering::Relaxed),
            probes: self.probes.load(Ordering::Relaxed),
            probe_hits: self.probe_hits.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
            respawns: self.respawns.load(Ordering::Relaxed),
            replicas_put: self.replicas_put.load(Ordering::Relaxed),
            read_repairs: self.read_repairs.load(Ordering::Relaxed),
            warmed: self.warmed.load(Ordering::Relaxed),
            journal_appends: self.journal_appends.load(Ordering::Relaxed),
            journal_replays: self.journal_replays.load(Ordering::Relaxed),
            chaos_kills: self.chaos_kills.load(Ordering::Relaxed),
            chaos_partitions: self.chaos_partitions.load(Ordering::Relaxed),
            chaos_torn: self.chaos_torn.load(Ordering::Relaxed),
            chaos_stalls: self.chaos_stalls.load(Ordering::Relaxed),
            chaos_respawn_storms: self.chaos_respawn_storms.load(Ordering::Relaxed),
            chaos_replica_drops: self.chaos_replica_drops.load(Ordering::Relaxed),
            chaos_journal_torn: self.chaos_journal_torn.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`ClusterStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)] // field meanings documented on ClusterStats
pub struct ClusterSnapshot {
    pub connections: u64,
    pub requests: u64,
    pub routed_ok: u64,
    pub routed_error: u64,
    pub relayed_rejects: u64,
    pub sheds: u64,
    pub probes: u64,
    pub probe_hits: u64,
    pub failovers: u64,
    pub malformed: u64,
    pub respawns: u64,
    pub replicas_put: u64,
    pub read_repairs: u64,
    pub warmed: u64,
    pub journal_appends: u64,
    pub journal_replays: u64,
    pub chaos_kills: u64,
    pub chaos_partitions: u64,
    pub chaos_torn: u64,
    pub chaos_stalls: u64,
    pub chaos_respawn_storms: u64,
    pub chaos_replica_drops: u64,
    pub chaos_journal_torn: u64,
}

impl ClusterSnapshot {
    /// Renders the counters as a JSON object (the `stats` trailer).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"connections\":{},\"requests\":{},\"routed_ok\":{},\
             \"routed_error\":{},\"relayed_rejects\":{},\"sheds\":{},\
             \"probes\":{},\"probe_hits\":{},\"failovers\":{},\
             \"malformed\":{},\"respawns\":{},\"replicas_put\":{},\
             \"read_repairs\":{},\"warmed\":{},\"journal_appends\":{},\
             \"journal_replays\":{},\"chaos_kills\":{},\
             \"chaos_partitions\":{},\"chaos_torn\":{},\"chaos_stalls\":{},\
             \"chaos_respawn_storms\":{},\"chaos_replica_drops\":{},\
             \"chaos_journal_torn\":{}}}",
            self.connections,
            self.requests,
            self.routed_ok,
            self.routed_error,
            self.relayed_rejects,
            self.sheds,
            self.probes,
            self.probe_hits,
            self.failovers,
            self.malformed,
            self.respawns,
            self.replicas_put,
            self.read_repairs,
            self.warmed,
            self.journal_appends,
            self.journal_replays,
            self.chaos_kills,
            self.chaos_partitions,
            self.chaos_torn,
            self.chaos_stalls,
            self.chaos_respawn_storms,
            self.chaos_replica_drops,
            self.chaos_journal_torn,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use troy_service::Json;

    #[test]
    fn snapshot_renders_as_json() {
        let stats = ClusterStats::default();
        ClusterStats::bump(&stats.requests);
        ClusterStats::bump(&stats.requests);
        ClusterStats::bump(&stats.failovers);
        ClusterStats::bump(&stats.respawns);
        ClusterStats::bump(&stats.journal_replays);
        let snap = stats.snapshot();
        let json = Json::parse(&snap.to_json()).expect("stats render parses");
        assert_eq!(json.get("requests").and_then(Json::as_u64), Some(2));
        assert_eq!(json.get("failovers").and_then(Json::as_u64), Some(1));
        assert_eq!(json.get("sheds").and_then(Json::as_u64), Some(0));
        assert_eq!(json.get("respawns").and_then(Json::as_u64), Some(1));
        assert_eq!(json.get("replicas_put").and_then(Json::as_u64), Some(0));
        assert_eq!(json.get("journal_replays").and_then(Json::as_u64), Some(1));
    }
}
