//! The router's durable dispatch journal: an append-only, checksummed,
//! torn-write-tolerant write-ahead log of accepted synthesis requests.
//!
//! The cluster's contract is that no accepted request is ever lost —
//! but before this journal, "accepted" lived only in router memory, so
//! a router crash forgot every request it had taken and not yet
//! answered. The journal closes that window: a `synth` frame is
//! appended (and fsync'd) *before* dispatch, its terminal outcome is
//! appended when the response goes out, and on restart every accepted
//! entry without a terminal outcome is replayed through normal
//! dispatch. Replay is at-least-once by design: a crash between writing
//! the response and journaling the completion re-dispatches a request
//! that was in fact answered, which costs a duplicate solve (usually a
//! cache hit) — never a lost one.
//!
//! ## Frame format
//!
//! One entry per line, self-synchronizing and individually checksummed:
//!
//! ```text
//! TJ1 <fnv64-hex> {"seq":12,"kind":"accepted","frame":"{…request…}"}
//! TJ1 <fnv64-hex> {"seq":12,"kind":"completed"}
//! ```
//!
//! The checksum (FNV-1a over the payload bytes) makes a torn write —
//! a crash, full disk, or the chaos injector's `JournalTorn` fault
//! cutting a frame short — detectable: replay drops any line whose
//! checksum fails and any unterminated tail, losing at most the torn
//! frames themselves. An appender that discovers the file does not end
//! in a newline (a torn predecessor) starts its frame on a fresh line,
//! so one torn write can never corrupt the frames after it.
//!
//! ## Rotation and compaction
//!
//! Completed entries are dead weight; once enough accumulate the
//! journal is compacted — rewritten (temp file + fsync + rename + dir
//! sync, the same atomic pattern the result cache uses) to contain only
//! the still-incomplete entries. The journal therefore stays
//! proportional to the *in-flight* window, not the request history.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

use troy_resilience::{Chaos, SelfHealFault};
use troy_service::{escape, Json};

/// Journal file name inside `--journal-dir`.
pub const JOURNAL_FILE: &str = "dispatch.wal";

/// Completions tolerated before the next append compacts the file.
const COMPACT_AFTER_COMPLETIONS: u64 = 64;

/// FNV-1a over the payload bytes — cheap, dependency-free, and plenty
/// to tell a torn frame from a whole one (this is corruption detection,
/// not authentication).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// An accepted request recovered from the journal at open: it has no
/// recorded terminal outcome and must be re-dispatched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// The entry's journal sequence number.
    pub seq: u64,
    /// The original request line, verbatim.
    pub frame: String,
}

struct JournalFile {
    file: File,
    /// Next sequence number to assign.
    next_seq: u64,
    /// Accepted entries without a terminal outcome, in seq order.
    pending: BTreeMap<u64, String>,
    /// Completions appended since the last compaction.
    completions: u64,
    /// The last append was torn (chaos): the next one must start a
    /// fresh line first.
    needs_newline: bool,
}

/// The dispatch journal. All methods are crash-safe: an append is
/// fsync'd before it returns, and compaction replaces the file
/// atomically.
pub struct Journal {
    path: PathBuf,
    dir: PathBuf,
    inner: Mutex<JournalFile>,
    chaos: Chaos,
}

impl Journal {
    /// Opens (or creates) the journal in `dir`, replays it, compacts
    /// away completed entries, and returns the still-incomplete ones in
    /// acceptance order — the router's replay work list.
    ///
    /// # Errors
    /// Directory creation or journal I/O failed. A *corrupt* journal is
    /// not an error: damaged frames are skipped, whole ones recovered.
    pub fn open(dir: &Path, chaos: Chaos) -> std::io::Result<(Journal, Vec<JournalEntry>)> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(JOURNAL_FILE);
        let mut pending = BTreeMap::new();
        let mut next_seq = 0;
        if let Ok(mut file) = File::open(&path) {
            let mut text = String::new();
            // Invalid UTF-8 (bit rot inside a frame) must not abort the
            // replay of every *other* frame: read lossily; the damaged
            // frame then fails its checksum and is skipped like any
            // other torn line.
            let mut bytes = Vec::new();
            file.read_to_end(&mut bytes)?;
            text.push_str(&String::from_utf8_lossy(&bytes));
            for line in text.lines() {
                let Some((seq, kind, frame)) = parse_frame(line) else {
                    continue; // torn or damaged: lose this frame only
                };
                next_seq = next_seq.max(seq + 1);
                match kind {
                    FrameKind::Accepted => {
                        if let Some(frame) = frame {
                            pending.insert(seq, frame);
                        }
                    }
                    FrameKind::Completed => {
                        pending.remove(&seq);
                    }
                }
            }
        }
        let replay: Vec<JournalEntry> = pending
            .iter()
            .map(|(&seq, frame)| JournalEntry {
                seq,
                frame: frame.clone(),
            })
            .collect();
        // Compact on open: the rewritten file holds exactly the pending
        // entries, dropping completed ones and any torn tail.
        write_compacted(dir, &path, &pending)?;
        let file = OpenOptions::new().append(true).open(&path)?;
        let journal = Journal {
            path,
            dir: dir.to_path_buf(),
            inner: Mutex::new(JournalFile {
                file,
                next_seq,
                pending,
                completions: 0,
                needs_newline: false,
            }),
            chaos,
        };
        Ok((journal, replay))
    }

    /// The journal file's path (diagnostics and tests).
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Journals an accepted request ahead of dispatch and returns its
    /// sequence number. The frame is fsync'd before this returns, so a
    /// router crash after `accepted` can never forget the request.
    pub fn accepted(&self, frame: &str) -> u64 {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let payload = format!(
            "{{\"seq\":{seq},\"kind\":\"accepted\",\"frame\":{}}}",
            escape(frame)
        );
        inner.pending.insert(seq, frame.to_owned());
        self.append(&mut inner, seq, &payload);
        seq
    }

    /// Journals the terminal outcome of entry `seq`. Every accepted
    /// request must reach this exactly once — ok, degraded, typed error
    /// or shed all count; only silence does not.
    pub fn completed(&self, seq: u64) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.pending.remove(&seq).is_none() {
            return; // unknown or already completed: idempotent
        }
        let payload = format!("{{\"seq\":{seq},\"kind\":\"completed\"}}");
        self.append(&mut inner, seq, &payload);
        inner.completions += 1;
        if inner.completions >= COMPACT_AFTER_COMPLETIONS {
            self.compact(&mut inner);
        }
    }

    /// Entries currently awaiting a terminal outcome.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pending
            .len()
    }

    /// Appends one framed payload, honoring a scheduled `JournalTorn`
    /// fault by writing only a prefix (simulating a crash mid-write).
    fn append(&self, inner: &mut JournalFile, seq: u64, payload: &str) {
        let frame = format!("TJ1 {:016x} {payload}\n", fnv64(payload.as_bytes()));
        let torn = self.chaos.fault_for_journal_append(seq) == Some(SelfHealFault::JournalTorn);
        if inner.needs_newline {
            let _ = inner.file.write_all(b"\n");
            inner.needs_newline = false;
        }
        if torn {
            // A crashing writer leaves a prefix; the checksum will fail
            // at replay and the frame is dropped, nothing else.
            let cut = frame.len() / 2;
            let _ = inner.file.write_all(&frame.as_bytes()[..cut]);
            inner.needs_newline = true;
        } else {
            let _ = inner.file.write_all(frame.as_bytes());
        }
        let _ = inner.file.sync_data();
    }

    /// Rewrites the journal to hold only the pending entries, via the
    /// atomic temp + fsync + rename + dir-sync pattern.
    fn compact(&self, inner: &mut JournalFile) {
        if write_compacted(&self.dir, &self.path, &inner.pending).is_ok() {
            if let Ok(file) = OpenOptions::new().append(true).open(&self.path) {
                inner.file = file;
                inner.completions = 0;
                inner.needs_newline = false;
            }
        }
    }
}

/// Writes a journal containing exactly `pending`, atomically replacing
/// `path`.
fn write_compacted(
    dir: &Path,
    path: &Path,
    pending: &BTreeMap<u64, String>,
) -> std::io::Result<()> {
    let tmp = dir.join(format!("{JOURNAL_FILE}.tmp"));
    {
        let mut out = File::create(&tmp)?;
        for (seq, frame) in pending {
            let payload = format!(
                "{{\"seq\":{seq},\"kind\":\"accepted\",\"frame\":{}}}",
                escape(frame)
            );
            let line = format!("TJ1 {:016x} {payload}\n", fnv64(payload.as_bytes()));
            out.write_all(line.as_bytes())?;
        }
        out.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

enum FrameKind {
    Accepted,
    Completed,
}

/// Parses and checksums one journal line. `None` for anything torn,
/// damaged, or from a future format version.
fn parse_frame(line: &str) -> Option<(u64, FrameKind, Option<String>)> {
    let rest = line.strip_prefix("TJ1 ")?;
    let (sum_hex, payload) = rest.split_at_checked(16)?;
    let payload = payload.strip_prefix(' ')?;
    let sum = u64::from_str_radix(sum_hex, 16).ok()?;
    if fnv64(payload.as_bytes()) != sum {
        return None;
    }
    let json = Json::parse(payload)?;
    let seq = json.get("seq").and_then(Json::as_u64)?;
    match json.get("kind").and_then(Json::as_str)? {
        "accepted" => {
            let frame = json.get("frame").and_then(Json::as_str)?.to_owned();
            Some((seq, FrameKind::Accepted, Some(frame)))
        }
        "completed" => Some((seq, FrameKind::Completed, None)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "troy-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn accepted_entries_replay_until_completed() {
        let dir = tmp_dir("replay");
        {
            let (journal, replay) = Journal::open(&dir, Chaos::disabled()).unwrap();
            assert!(replay.is_empty(), "fresh journal replays nothing");
            let a = journal.accepted(r#"{"id":"r1","cmd":"synth","benchmark":"polynom"}"#);
            let b = journal.accepted(r#"{"id":"r2","cmd":"synth","benchmark":"chem"}"#);
            journal.completed(a);
            assert_eq!(journal.pending(), 1);
            let _ = b;
        }
        // "Restart": r2 was accepted but never completed — it replays.
        let (journal, replay) = Journal::open(&dir, Chaos::disabled()).unwrap();
        assert_eq!(replay.len(), 1);
        assert!(replay[0].frame.contains("\"id\":\"r2\""));
        journal.completed(replay[0].seq);
        drop(journal);
        let (_, replay) = Journal::open(&dir, Chaos::disabled()).unwrap();
        assert!(replay.is_empty(), "completion sticks across restarts");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn completion_is_idempotent_and_sequence_numbers_survive_restart() {
        let dir = tmp_dir("seq");
        let (journal, _) = Journal::open(&dir, Chaos::disabled()).unwrap();
        let a = journal.accepted("{\"id\":\"a\"}");
        journal.completed(a);
        journal.completed(a); // double completion: no panic, no effect
        journal.completed(999); // unknown seq: ignored
        drop(journal);
        let (journal, replay) = Journal::open(&dir, Chaos::disabled()).unwrap();
        assert!(replay.is_empty());
        assert!(
            journal.accepted("{\"id\":\"b\"}") > a,
            "sequence numbers never regress across restarts"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_drops_completed_entries_but_keeps_pending_ones() {
        let dir = tmp_dir("compact");
        let (journal, _) = Journal::open(&dir, Chaos::disabled()).unwrap();
        let keeper = journal.accepted("{\"id\":\"keeper\"}");
        // Enough completions to trip compaction mid-stream.
        for i in 0..(COMPACT_AFTER_COMPLETIONS + 8) {
            let seq = journal.accepted(&format!("{{\"id\":\"r{i}\"}}"));
            journal.completed(seq);
        }
        let size = std::fs::metadata(journal.path()).unwrap().len();
        // The compacted file holds ~1 pending entry, not 70+ frames.
        assert!(size < 2048, "compaction bounds the file: {size} bytes");
        assert_eq!(journal.pending(), 1);
        drop(journal);
        let (_, replay) = Journal::open(&dir, Chaos::disabled()).unwrap();
        assert_eq!(replay.len(), 1);
        assert_eq!(replay[0].seq, keeper);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_recovers_or_cleanly_ignores_a_wal_truncated_at_every_byte() {
        // The torn-write acceptance gate: truncate a real WAL at *every*
        // byte boundary; each prefix must replay every frame whose bytes
        // fully survived, drop the torn tail, and never panic or invent
        // an entry.
        let dir = tmp_dir("torn");
        let (journal, _) = Journal::open(&dir, Chaos::disabled()).unwrap();
        let frames = [
            r#"{"id":"t0","cmd":"synth","benchmark":"polynom"}"#,
            r#"{"id":"t1","cmd":"synth","benchmark":"chem"}"#,
            r#"{"id":"t2","cmd":"synth","dfg":"inline"}"#,
        ];
        let mut seqs = Vec::new();
        for frame in &frames {
            seqs.push(journal.accepted(frame));
        }
        journal.completed(seqs[1]);
        drop(journal);
        let wal = std::fs::read(dir.join(JOURNAL_FILE)).unwrap();
        // Byte offsets at which each line of the WAL ends.
        let line_ends: Vec<usize> = wal
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b == b'\n')
            .map(|(i, _)| i + 1)
            .collect();
        assert_eq!(line_ends.len(), 4, "three accepts + one completion");
        let scratch = tmp_dir("torn-scratch");
        for cut in 0..=wal.len() {
            let _ = std::fs::remove_dir_all(&scratch);
            std::fs::create_dir_all(&scratch).unwrap();
            std::fs::write(scratch.join(JOURNAL_FILE), &wal[..cut]).unwrap();
            let (_, replay) = Journal::open(&scratch, Chaos::disabled()).unwrap();
            // Which frames survived the cut? A frame needs everything
            // up to (not necessarily including) its newline: a cut that
            // loses only the `\n` leaves a complete, checksummed
            // payload, and recovery rightly keeps it.
            let whole = line_ends.iter().filter(|&&e| e - 1 <= cut).count();
            let expect: Vec<&str> = match whole {
                0 => vec![],
                1 => vec![frames[0]],
                2 => vec![frames[0], frames[1]],
                3 => vec![frames[0], frames[1], frames[2]],
                // The completion line for t1 survived too.
                _ => vec![frames[0], frames[2]],
            };
            let got: Vec<&str> = replay.iter().map(|e| e.frame.as_str()).collect();
            assert_eq!(got, expect, "cut at byte {cut}/{}", wal.len());
        }
        let _ = std::fs::remove_dir_all(&scratch);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_torn_appends_lose_only_their_own_frame() {
        // Sweep seeds until the injector tears at least one append, and
        // pin the isolation property: frames after a torn one survive.
        let mut torn_seen = false;
        for seed in 0..64u64 {
            let chaos = Chaos::seeded(seed);
            let torn: Vec<u64> = (0..12)
                .filter(|&s| chaos.fault_for_journal_append(s).is_some())
                .collect();
            if torn.is_empty() || torn.len() == 12 {
                continue;
            }
            torn_seen = true;
            let dir = tmp_dir(&format!("chaos-{seed}"));
            let (journal, _) = Journal::open(&dir, chaos).unwrap();
            for i in 0..12u64 {
                journal.accepted(&format!("{{\"id\":\"c{i}\"}}"));
            }
            drop(journal);
            let (_, replay) = Journal::open(&dir, Chaos::disabled()).unwrap();
            let got: Vec<u64> = replay.iter().map(|e| e.seq).collect();
            let expect: Vec<u64> = (0..12).filter(|s| !torn.contains(s)).collect();
            assert_eq!(got, expect, "seed {seed}: exactly the torn frames are lost");
            let _ = std::fs::remove_dir_all(&dir);
        }
        assert!(torn_seen, "the sweep exercised at least one torn append");
    }
}
