//! A seeded consistent-hash ring over worker slots.
//!
//! The router places every request by its content-addressed cache key
//! (`troy_service::request_key`), so two requests describing the same
//! synthesis problem always land on the same worker and its result cache
//! fills with exactly the keys it owns. Virtual nodes (`replicas` points
//! per member) keep the shards balanced, and the classic consistent-hash
//! property bounds rebalance churn: when a worker joins, the only keys
//! that move are the ones the joiner now owns — every other key keeps
//! its owner and therefore its warm cache.
//!
//! [`Ring::walk`] returns *all* members in ring order from the key's
//! position, not just the owner: rank 1 is the shard owner, rank 2 is
//! the failover target (and, after a join, usually the *previous* owner
//! — which is why the router's peer-cache probes consult it), and so on.
//! Membership is append-only; dead or draining workers stay on the ring
//! and are filtered by the dispatcher, so placement never flaps while a
//! worker is merely sick.

/// `splitmix64`: the same cheap avalanching mixer the chaos harness and
/// backoff jitter use, duplicated here so the ring stays self-contained.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A seeded virtual-node consistent-hash ring; members are worker slot
/// indices.
#[derive(Debug, Clone)]
pub struct Ring {
    seed: u64,
    replicas: usize,
    /// Sorted `(point, member)` pairs — the ring itself.
    points: Vec<(u64, usize)>,
    members: usize,
}

impl Ring {
    /// Builds a ring with `replicas` virtual nodes per member. The seed
    /// fixes every point position, so two routers configured alike agree
    /// on placement.
    #[must_use]
    pub fn new(seed: u64, replicas: usize, members: &[usize]) -> Self {
        let mut ring = Ring {
            seed,
            replicas: replicas.max(1),
            points: Vec::new(),
            members: 0,
        };
        ring.rebuild(members);
        ring
    }

    /// Recomputes the ring for a new membership list. Point positions
    /// depend only on `(seed, member, replica)`, never on list order or
    /// length — the consistent-hash guarantee that a join moves only the
    /// keys the joiner takes over.
    pub fn rebuild(&mut self, members: &[usize]) {
        self.points.clear();
        self.members = members.len();
        for &m in members {
            let base = mix(self.seed ^ mix((m as u64) + 1));
            for r in 0..self.replicas {
                let point = mix(base ^ mix(r as u64).rotate_left(23));
                self.points.push((point, m));
            }
        }
        self.points.sort_unstable();
    }

    /// Number of members currently on the ring.
    #[must_use]
    pub fn members(&self) -> usize {
        self.members
    }

    /// All members in ring order starting at the key's position: index 0
    /// is the shard owner, index 1 the first failover target, and so on.
    /// Each member appears exactly once. Empty only when the ring is.
    #[must_use]
    pub fn walk(&self, key: (u64, u64)) -> Vec<usize> {
        if self.points.is_empty() {
            return Vec::new();
        }
        let k = mix(key.0 ^ mix(key.1 ^ self.seed));
        let start = self.points.partition_point(|&(p, _)| p < k);
        let mut order = Vec::with_capacity(self.members);
        for i in 0..self.points.len() {
            let (_, member) = self.points[(start + i) % self.points.len()];
            if !order.contains(&member) {
                order.push(member);
                if order.len() == self.members {
                    break;
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u64) -> impl Iterator<Item = (u64, u64)> {
        (0..n).map(|i| (mix(i), mix(i ^ 0xABCD)))
    }

    #[test]
    fn walk_is_deterministic_and_covers_every_member() {
        let ring = Ring::new(7, 32, &[0, 1, 2]);
        for key in keys(64) {
            let walk = ring.walk(key);
            assert_eq!(walk.len(), 3, "every member appears once");
            let mut sorted = walk.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2]);
            assert_eq!(walk, ring.walk(key), "placement is a pure function");
        }
    }

    #[test]
    fn seeds_shuffle_ownership() {
        let a = Ring::new(1, 32, &[0, 1, 2, 3]);
        let b = Ring::new(2, 32, &[0, 1, 2, 3]);
        let moved = keys(256).filter(|&k| a.walk(k)[0] != b.walk(k)[0]).count();
        assert!(moved > 0, "different seeds give different placements");
    }

    #[test]
    fn join_moves_keys_only_to_the_joiner() {
        // The consistent-hash contract behind graceful rebalance: adding
        // w2 may claim keys, but no key may move *between* w0 and w1 —
        // their caches stay valid for everything they keep.
        let mut ring = Ring::new(42, 32, &[0, 1]);
        let before: Vec<usize> = keys(512).map(|k| ring.walk(k)[0]).collect();
        ring.rebuild(&[0, 1, 2]);
        let mut claimed = 0;
        for (key, old_owner) in keys(512).zip(before) {
            let new_owner = ring.walk(key)[0];
            if new_owner != old_owner {
                assert_eq!(new_owner, 2, "only the joiner may take ownership");
                // The demoted previous owner is the natural peer-cache
                // probe target: it must be next in the walk.
                assert_eq!(ring.walk(key)[1], old_owner);
                claimed += 1;
            }
        }
        assert!(claimed > 0, "the joiner takes a share of the keyspace");
    }

    #[test]
    fn virtual_nodes_balance_the_shards() {
        let ring = Ring::new(9, 64, &[0, 1, 2]);
        let mut counts = [0usize; 3];
        for key in keys(3000) {
            counts[ring.walk(key)[0]] += 1;
        }
        for &c in &counts {
            assert!(
                (500..=1500).contains(&c),
                "no shard may hold a grossly skewed share: {counts:?}"
            );
        }
    }
}
