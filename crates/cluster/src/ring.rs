//! A seeded consistent-hash ring over worker slots.
//!
//! The router places every request by its content-addressed cache key
//! (`troy_service::request_key`), so two requests describing the same
//! synthesis problem always land on the same worker and its result cache
//! fills with exactly the keys it owns. Virtual nodes (`replicas` points
//! per member) keep the shards balanced, and the classic consistent-hash
//! property bounds rebalance churn: when a worker joins, the only keys
//! that move are the ones the joiner now owns — every other key keeps
//! its owner and therefore its warm cache.
//!
//! [`Ring::walk`] returns *all* members in ring order from the key's
//! position, not just the owner: rank 1 is the shard owner, rank 2 is
//! the failover target (and, after a join, usually the *previous* owner
//! — which is why the router's peer-cache probes consult it), and so on.
//! Membership is append-only; dead or draining workers stay on the ring
//! and are filtered by the dispatcher, so placement never flaps while a
//! worker is merely sick.

/// `splitmix64`: the same cheap avalanching mixer the chaos harness and
/// backoff jitter use, duplicated here so the ring stays self-contained.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A seeded virtual-node consistent-hash ring; members are worker slot
/// indices.
#[derive(Debug, Clone)]
pub struct Ring {
    seed: u64,
    replicas: usize,
    /// Sorted `(point, member)` pairs — the ring itself.
    points: Vec<(u64, usize)>,
    members: usize,
}

impl Ring {
    /// Builds a ring with `replicas` virtual nodes per member. The seed
    /// fixes every point position, so two routers configured alike agree
    /// on placement.
    #[must_use]
    pub fn new(seed: u64, replicas: usize, members: &[usize]) -> Self {
        let mut ring = Ring {
            seed,
            replicas: replicas.max(1),
            points: Vec::new(),
            members: 0,
        };
        ring.rebuild(members);
        ring
    }

    /// Recomputes the ring for a new membership list. Point positions
    /// depend only on `(seed, member, replica)`, never on list order or
    /// length — the consistent-hash guarantee that a join moves only the
    /// keys the joiner takes over.
    pub fn rebuild(&mut self, members: &[usize]) {
        self.points.clear();
        self.members = members.len();
        for &m in members {
            let base = mix(self.seed ^ mix((m as u64) + 1));
            for r in 0..self.replicas {
                let point = mix(base ^ mix(r as u64).rotate_left(23));
                self.points.push((point, m));
            }
        }
        self.points.sort_unstable();
    }

    /// Number of members currently on the ring.
    #[must_use]
    pub fn members(&self) -> usize {
        self.members
    }

    /// All members in ring order starting at the key's position: index 0
    /// is the shard owner, index 1 the first failover target, and so on.
    /// Each member appears exactly once. Empty only when the ring is.
    ///
    /// Returns a [`Walk`] — stack-allocated up to [`Walk::INLINE`]
    /// members — so the router's hot paths (every dispatch *and* every
    /// probe call this) stay allocation-free at realistic fleet sizes.
    #[must_use]
    pub fn walk(&self, key: (u64, u64)) -> Walk {
        let mut order = Walk::new();
        if self.points.is_empty() {
            return order;
        }
        let k = mix(key.0 ^ mix(key.1 ^ self.seed));
        let start = self.points.partition_point(|&(p, _)| p < k);
        for i in 0..self.points.len() {
            let (_, member) = self.points[(start + i) % self.points.len()];
            if !order.contains(&member) {
                order.push(member);
                if order.len() == self.members {
                    break;
                }
            }
        }
        order
    }
}

/// The member order [`Ring::walk`] produces for one key.
///
/// A small fixed-capacity vector: clusters of up to [`Walk::INLINE`]
/// workers walk without touching the heap, and larger memberships spill
/// to a `Vec` transparently. Dereferences to `[usize]`, so call sites
/// index, iterate and sort it exactly like the `Vec<usize>` it replaced.
#[derive(Clone)]
pub struct Walk {
    inline: [usize; Walk::INLINE],
    len: usize,
    /// Heap spill, holding *all* elements once `len` exceeds `INLINE`.
    spill: Vec<usize>,
}

impl Walk {
    /// Members held without a heap allocation.
    pub const INLINE: usize = 8;

    fn new() -> Walk {
        Walk {
            inline: [0; Walk::INLINE],
            len: 0,
            spill: Vec::new(),
        }
    }

    fn push(&mut self, member: usize) {
        if self.len < Walk::INLINE {
            self.inline[self.len] = member;
        } else {
            if self.spill.is_empty() {
                self.spill.reserve(self.len + 1);
                self.spill.extend_from_slice(&self.inline);
            }
            self.spill.push(member);
        }
        self.len += 1;
    }

    fn as_slice(&self) -> &[usize] {
        if self.len <= Walk::INLINE {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }
}

impl std::ops::Deref for Walk {
    type Target = [usize];

    fn deref(&self) -> &[usize] {
        self.as_slice()
    }
}

impl std::ops::DerefMut for Walk {
    fn deref_mut(&mut self) -> &mut [usize] {
        if self.len <= Walk::INLINE {
            &mut self.inline[..self.len]
        } else {
            &mut self.spill
        }
    }
}

impl std::fmt::Debug for Walk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl PartialEq for Walk {
    fn eq(&self, other: &Walk) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Walk {}

impl PartialEq<Vec<usize>> for Walk {
    fn eq(&self, other: &Vec<usize>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Walk> for Vec<usize> {
    fn eq(&self, other: &Walk) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<'a> IntoIterator for &'a Walk {
    type Item = &'a usize;
    type IntoIter = std::slice::Iter<'a, usize>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u64) -> impl Iterator<Item = (u64, u64)> {
        (0..n).map(|i| (mix(i), mix(i ^ 0xABCD)))
    }

    #[test]
    fn walk_is_deterministic_and_covers_every_member() {
        let ring = Ring::new(7, 32, &[0, 1, 2]);
        for key in keys(64) {
            let walk = ring.walk(key);
            assert_eq!(walk.len(), 3, "every member appears once");
            let mut sorted = walk.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2]);
            assert_eq!(walk, ring.walk(key), "placement is a pure function");
        }
    }

    #[test]
    fn seeds_shuffle_ownership() {
        let a = Ring::new(1, 32, &[0, 1, 2, 3]);
        let b = Ring::new(2, 32, &[0, 1, 2, 3]);
        let moved = keys(256).filter(|&k| a.walk(k)[0] != b.walk(k)[0]).count();
        assert!(moved > 0, "different seeds give different placements");
    }

    #[test]
    fn join_moves_keys_only_to_the_joiner() {
        // The consistent-hash contract behind graceful rebalance: adding
        // w2 may claim keys, but no key may move *between* w0 and w1 —
        // their caches stay valid for everything they keep.
        let mut ring = Ring::new(42, 32, &[0, 1]);
        let before: Vec<usize> = keys(512).map(|k| ring.walk(k)[0]).collect();
        ring.rebuild(&[0, 1, 2]);
        let mut claimed = 0;
        for (key, old_owner) in keys(512).zip(before) {
            let new_owner = ring.walk(key)[0];
            if new_owner != old_owner {
                assert_eq!(new_owner, 2, "only the joiner may take ownership");
                // The demoted previous owner is the natural peer-cache
                // probe target: it must be next in the walk.
                assert_eq!(ring.walk(key)[1], old_owner);
                claimed += 1;
            }
        }
        assert!(claimed > 0, "the joiner takes a share of the keyspace");
    }

    /// The `Vec`-collecting walk the allocation-free [`Walk`] replaced,
    /// kept as the behavioral oracle.
    fn reference_walk(ring: &Ring, key: (u64, u64)) -> Vec<usize> {
        if ring.points.is_empty() {
            return Vec::new();
        }
        let k = mix(key.0 ^ mix(key.1 ^ ring.seed));
        let start = ring.points.partition_point(|&(p, _)| p < k);
        let mut order = Vec::with_capacity(ring.members);
        for i in 0..ring.points.len() {
            let (_, member) = ring.points[(start + i) % ring.points.len()];
            if !order.contains(&member) {
                order.push(member);
                if order.len() == ring.members {
                    break;
                }
            }
        }
        order
    }

    #[test]
    fn small_vec_walk_matches_the_reference_exactly() {
        // Property: for memberships below, at, and past the inline
        // capacity, the fixed-capacity walk is element-for-element the
        // old Vec walk — the allocation cut changes no behavior.
        for members in [
            1,
            2,
            3,
            Walk::INLINE - 1,
            Walk::INLINE,
            Walk::INLINE + 3,
            13,
        ] {
            let list: Vec<usize> = (0..members).collect();
            let ring = Ring::new(17, 16, &list);
            for key in keys(128) {
                let walk = ring.walk(key);
                let reference = reference_walk(&ring, key);
                assert_eq!(walk, reference, "{members} members, key {key:?}");
                assert_eq!(walk.len(), members);
            }
        }
        assert!(Ring::new(17, 16, &[]).walk((1, 2)).is_empty());
    }

    #[test]
    fn rejoin_restores_the_pre_kill_assignment() {
        // The respawn half of the consistent-hash contract (complement
        // of `join_moves_keys_only_to_the_joiner`): point positions
        // depend only on (seed, member, replica), so dropping a member
        // and rebuilding with the original list — exactly what kill →
        // respawn does — restores the *entire* pre-kill walk, owner and
        // failover order alike, for every key.
        for seed in [3, 42, 0x7452_6f79] {
            let mut ring = Ring::new(seed, 32, &[0, 1, 2]);
            let before: Vec<Vec<usize>> = keys(256).map(|k| ring.walk(k).to_vec()).collect();
            for dead in 0..3usize {
                let survivors: Vec<usize> = (0..3).filter(|&m| m != dead).collect();
                ring.rebuild(&survivors);
                let mut displaced = 0;
                for (key, old) in keys(256).zip(&before) {
                    if old[0] == dead {
                        // The dead owner's keys fall to its old first
                        // failover target — the walk minus the dead.
                        assert_eq!(ring.walk(key)[0], old[1], "seed {seed}");
                        displaced += 1;
                    } else {
                        assert_eq!(ring.walk(key)[0], old[0], "survivors keep their keys");
                    }
                }
                assert!(displaced > 0, "the dead worker owned a share");
                // Respawn: same member list, same seed — the original
                // assignment comes back verbatim.
                ring.rebuild(&[0, 1, 2]);
                for (key, old) in keys(256).zip(&before) {
                    assert_eq!(ring.walk(key), *old, "seed {seed}: full walk restored");
                }
            }
        }
    }

    #[test]
    fn virtual_nodes_balance_the_shards() {
        let ring = Ring::new(9, 64, &[0, 1, 2]);
        let mut counts = [0usize; 3];
        for key in keys(3000) {
            counts[ring.walk(key)[0]] += 1;
        }
        for &c in &counts {
            assert!(
                (500..=1500).contains(&c),
                "no shard may hold a grossly skewed share: {counts:?}"
            );
        }
    }
}
