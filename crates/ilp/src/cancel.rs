//! Cooperative cancellation for long-running solves.
//!
//! A [`Cancellation`] is a cheap, cloneable handle shared between a solve
//! running on one thread and whoever supervises it on another (a portfolio
//! racing several back ends, a batch scheduler enforcing a global deadline,
//! a CLI reacting to Ctrl-C). Solvers poll [`Cancellation::is_expired`] in
//! their inner loops and wind down gracefully — returning their best
//! incumbent where they have one, exactly like hitting a time limit.
//!
//! Two independent trip conditions, whichever fires first:
//!
//! - an explicit [`Cancellation::cancel`] call from any holder of a clone
//!   (first-proven-optimal-wins racing);
//! - an absolute wall-clock [deadline](Cancellation::with_deadline)
//!   (shared budget across a whole batch, not per-solve).
//!
//! Tokens form a hierarchy via [`Cancellation::child`]: cancelling a
//! parent cancels every descendant, while cancelling a child leaves its
//! parent (and siblings) running. A portfolio hands each racing back end
//! its own child so a proven-optimal winner can stop exactly the rivals
//! that can no longer win.
//!
//! The default token never expires, so single-solver callers pay one
//! relaxed atomic load per poll and nothing else.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shared cancellation token polled by solver inner loops.
///
/// Clones share the same flag: cancelling any clone cancels them all.
///
/// # Examples
///
/// ```
/// use troy_ilp::Cancellation;
///
/// let token = Cancellation::new();
/// let observer = token.clone();
/// assert!(!observer.is_expired());
/// token.cancel();
/// assert!(observer.is_expired());
/// ```
#[derive(Debug, Clone)]
pub struct Cancellation {
    /// `flags[0]` is this token's own flag ([`Cancellation::cancel`] sets
    /// it); the rest belong to ancestors. Any raised flag expires the
    /// token, so parent cancellation propagates down but not up.
    flags: Vec<Arc<AtomicBool>>,
    deadline: Option<Instant>,
}

impl Default for Cancellation {
    fn default() -> Self {
        Cancellation {
            flags: vec![Arc::new(AtomicBool::new(false))],
            deadline: None,
        }
    }
}

impl Cancellation {
    /// A token that never expires until [`Cancellation::cancel`] is called.
    #[must_use]
    pub fn new() -> Self {
        Cancellation::default()
    }

    /// A token that additionally expires `budget` from now.
    #[must_use]
    pub fn with_deadline(budget: Duration) -> Self {
        Cancellation {
            deadline: Instant::now().checked_add(budget),
            ..Cancellation::default()
        }
    }

    /// A child token: expires when this token does (cancel or deadline),
    /// but cancelling the child does not touch this token or its other
    /// children.
    ///
    /// ```
    /// use troy_ilp::Cancellation;
    ///
    /// let race = Cancellation::new();
    /// let loser = race.child();
    /// let rival = race.child();
    /// loser.cancel();
    /// assert!(loser.is_expired());
    /// assert!(!rival.is_expired(), "siblings are independent");
    /// race.cancel();
    /// assert!(rival.is_expired(), "parent cancel reaches every child");
    /// ```
    #[must_use]
    pub fn child(&self) -> Cancellation {
        let mut flags = Vec::with_capacity(self.flags.len() + 1);
        flags.push(Arc::new(AtomicBool::new(false)));
        flags.extend(self.flags.iter().cloned());
        Cancellation {
            flags,
            deadline: self.deadline,
        }
    }

    /// A child token that additionally expires `budget` from now.
    ///
    /// The effective deadline is the *earlier* of the parent's deadline
    /// and `now + budget`, so a supervisor can hand each attempt a slice
    /// of its own budget without ever extending it — the per-backend
    /// deadline hook the resilience supervisor builds on.
    ///
    /// A deadline that is already in the past when the child is created
    /// (a zero budget, or a parent whose deadline has expired) trips the
    /// child's own cancel flag immediately: the child and every token
    /// later derived from it observe expiry on their first poll through
    /// the flag chain, without depending on a clock comparison.
    ///
    /// ```
    /// use std::time::Duration;
    /// use troy_ilp::Cancellation;
    ///
    /// let run = Cancellation::with_deadline(Duration::from_secs(60));
    /// let attempt = run.child_with_deadline(Duration::from_millis(0));
    /// assert!(attempt.is_expired(), "attempt budget binds first");
    /// assert!(!run.is_expired(), "the run keeps its own deadline");
    /// ```
    #[must_use]
    pub fn child_with_deadline(&self, budget: Duration) -> Cancellation {
        let mut child = self.child();
        let now = Instant::now();
        // A budget so large that `now + budget` overflows the clock is an
        // unreachable bound: treat it as "no extra deadline" rather than
        // silently dropping the parent's.
        let attempt = now.checked_add(budget);
        child.deadline = match (child.deadline, attempt) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        if child.deadline.is_some_and(|d| d <= now) {
            child.cancel();
        }
        child
    }

    /// The absolute deadline, when one was set.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Trips this token's own flag; every clone and descendant observes it
    /// on its next poll.
    pub fn cancel(&self) {
        self.flags[0].store(true, Ordering::Relaxed);
    }

    /// `true` once [`Cancellation::cancel`] was called on any clone of
    /// this token or of an ancestor.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flags.iter().any(|f| f.load(Ordering::Relaxed))
    }

    /// `true` once cancelled *or* past the deadline — the condition solver
    /// inner loops poll.
    #[must_use]
    pub fn is_expired(&self) -> bool {
        self.is_cancelled() || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Time left until the deadline; `None` when no deadline was set,
    /// `Some(ZERO)` once it has passed.
    #[must_use]
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_token_never_expires() {
        let t = Cancellation::new();
        assert!(!t.is_cancelled());
        assert!(!t.is_expired());
        assert!(t.deadline().is_none());
        assert!(t.remaining().is_none());
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let t = Cancellation::new();
        let c = t.clone();
        c.cancel();
        assert!(t.is_cancelled());
        assert!(t.is_expired());
    }

    #[test]
    fn deadline_expires_without_explicit_cancel() {
        let t = Cancellation::with_deadline(Duration::from_millis(0));
        assert!(t.is_expired());
        assert!(!t.is_cancelled(), "deadline expiry is not a cancel call");
        assert_eq!(t.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn future_deadline_reports_remaining_budget() {
        let t = Cancellation::with_deadline(Duration::from_secs(3600));
        assert!(!t.is_expired());
        assert!(t.remaining().expect("deadline set") > Duration::from_secs(3000));
    }

    #[test]
    fn child_cancel_does_not_reach_parent_or_sibling() {
        let parent = Cancellation::new();
        let a = parent.child();
        let b = parent.child();
        a.cancel();
        assert!(a.is_expired());
        assert!(!parent.is_expired());
        assert!(!b.is_expired());
    }

    #[test]
    fn parent_cancel_reaches_grandchildren() {
        let parent = Cancellation::new();
        let child = parent.child();
        let grandchild = child.child();
        parent.cancel();
        assert!(child.is_expired());
        assert!(grandchild.is_expired());
    }

    #[test]
    fn child_with_deadline_takes_the_earlier_bound() {
        // Tighter child budget binds while the parent stays live; a
        // zero budget is a deadline already in the past, so the child is
        // cancelled at construction (not merely clock-expired).
        let parent = Cancellation::with_deadline(Duration::from_secs(3600));
        let attempt = parent.child_with_deadline(Duration::from_millis(0));
        assert!(attempt.is_expired());
        assert!(attempt.is_cancelled());
        assert!(!parent.is_expired());

        // A looser child budget cannot extend past the parent's deadline.
        let tight = Cancellation::with_deadline(Duration::from_millis(0));
        let loose = tight.child_with_deadline(Duration::from_secs(3600));
        assert!(loose.is_expired());

        // Without any parent deadline, the child budget alone applies.
        let free = Cancellation::new();
        let sliced = free.child_with_deadline(Duration::from_secs(3600));
        assert!(!sliced.is_expired());
        assert!(sliced.deadline().is_some());
        assert!(free.deadline().is_none());

        // Parent cancellation still reaches the deadline child.
        free.cancel();
        assert!(sliced.is_expired());
    }

    #[test]
    fn child_inherits_deadline() {
        let parent = Cancellation::with_deadline(Duration::from_millis(0));
        let child = parent.child();
        assert!(child.is_expired());
        assert!(!child.is_cancelled());
    }
}
