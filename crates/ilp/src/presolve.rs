//! Presolve: cheap, provably-safe model reductions applied before the
//! branch & bound.
//!
//! Three classic passes run to a fixed point:
//!
//! - **activity-based bound propagation**: if a constraint's minimum
//!   possible activity already exceeds its rhs (or the maximum falls
//!   short), the model is infeasible; if a single variable's contribution
//!   is pinned by the others' extremes, its bounds tighten;
//! - **fixing propagation**: variables whose tightened bounds collapse
//!   (`lo == hi`) become constants;
//! - **redundant-row elimination**: constraints that every in-bounds
//!   assignment satisfies are dropped.
//!
//! The reductions are *sound*: every feasible point of the original model
//! remains feasible and optimal value is preserved.

use crate::model::{Cmp, Model, VarId};

/// Outcome of presolving a model.
#[derive(Debug, Clone)]
pub struct Presolved {
    /// The reduced model (same variable ids as the input).
    pub model: Model,
    /// Variables fixed by presolve, as `(var, value)`.
    pub fixed: Vec<(VarId, f64)>,
    /// Number of constraints removed as redundant.
    pub removed_rows: usize,
    /// `true` if presolve proved the model infeasible outright.
    pub infeasible: bool,
}

/// Runs presolve on a model.
///
/// # Examples
///
/// ```
/// use troy_ilp::{presolve, LinExpr, Model};
///
/// let mut m = Model::minimize();
/// let x = m.binary("x");
/// let y = m.binary("y");
/// // x + y >= 2 forces both to 1.
/// m.add_ge("both", LinExpr::sum([x, y]), 2.0);
/// let p = presolve(&m);
/// assert!(!p.infeasible);
/// assert_eq!(p.fixed.len(), 2);
/// ```
#[must_use]
pub fn presolve(model: &Model) -> Presolved {
    let n = model.num_vars();
    let mut lo: Vec<f64> = (0..n).map(|i| model.variable(var(i)).lower()).collect();
    let mut hi: Vec<f64> = (0..n).map(|i| model.variable(var(i)).upper()).collect();
    let is_int: Vec<bool> = (0..n)
        .map(|i| model.variable(var(i)).kind() == crate::model::VarKind::Integer)
        .collect();

    let mut live: Vec<bool> = vec![true; model.num_constraints()];
    let mut infeasible = false;
    const TOL: f64 = 1e-9;

    // Fixed-point loop; each pass is O(nnz).
    for _round in 0..32 {
        let mut changed = false;
        for (ci, c) in model.constraints().iter().enumerate() {
            if !live[ci] || infeasible {
                continue;
            }
            // Minimum and maximum possible activity under current bounds.
            let mut min_act = 0.0;
            let mut max_act = 0.0;
            for &(v, a) in c.terms() {
                let (l, h) = (lo[v.index()], hi[v.index()]);
                if a >= 0.0 {
                    min_act += a * l;
                    max_act += a * h;
                } else {
                    min_act += a * h;
                    max_act += a * l;
                }
            }
            // Infeasibility / redundancy tests per sense.
            let (needs_upper, needs_lower) = match c.sense() {
                Cmp::Le => (true, false),
                Cmp::Ge => (false, true),
                Cmp::Eq => (true, true),
            };
            if needs_upper && min_act > c.rhs() + TOL {
                infeasible = true;
                break;
            }
            if needs_lower && max_act < c.rhs() - TOL {
                infeasible = true;
                break;
            }
            let redundant_upper = !needs_upper || max_act <= c.rhs() + TOL;
            let redundant_lower = !needs_lower || min_act >= c.rhs() - TOL;
            if redundant_upper && redundant_lower {
                live[ci] = false;
                changed = true;
                continue;
            }
            // Per-variable bound tightening.
            for &(v, a) in c.terms() {
                if a.abs() < TOL {
                    continue;
                }
                let i = v.index();
                let (l, h) = (lo[i], hi[i]);
                // Residual activity extremes without this variable.
                let (res_min, res_max) = if a >= 0.0 {
                    (min_act - a * l, max_act - a * h)
                } else {
                    (min_act - a * h, max_act - a * l)
                };
                // For `<=`: a*x <= rhs - res_min.
                if needs_upper {
                    let cap = c.rhs() - res_min;
                    if a > 0.0 {
                        let new_hi = cap / a;
                        let new_hi = if is_int[i] {
                            (new_hi + TOL).floor()
                        } else {
                            new_hi
                        };
                        if new_hi < hi[i] - TOL {
                            hi[i] = new_hi;
                            changed = true;
                        }
                    } else {
                        let new_lo = cap / a;
                        let new_lo = if is_int[i] {
                            (new_lo - TOL).ceil()
                        } else {
                            new_lo
                        };
                        if new_lo > lo[i] + TOL {
                            lo[i] = new_lo;
                            changed = true;
                        }
                    }
                }
                // For `>=`: a*x >= rhs - res_max.
                if needs_lower {
                    let need = c.rhs() - res_max;
                    if a > 0.0 {
                        let new_lo = need / a;
                        let new_lo = if is_int[i] {
                            (new_lo - TOL).ceil()
                        } else {
                            new_lo
                        };
                        if new_lo > lo[i] + TOL {
                            lo[i] = new_lo;
                            changed = true;
                        }
                    } else {
                        let new_hi = need / a;
                        let new_hi = if is_int[i] {
                            (new_hi + TOL).floor()
                        } else {
                            new_hi
                        };
                        if new_hi < hi[i] - TOL {
                            hi[i] = new_hi;
                            changed = true;
                        }
                    }
                }
                if lo[i] > hi[i] + TOL {
                    infeasible = true;
                    break;
                }
            }
            if infeasible {
                break;
            }
        }
        if !changed || infeasible {
            break;
        }
    }

    // Rebuild the reduced model with tightened bounds.
    let mut out = Model::with_sense(model.sense());
    let mut fixed = Vec::new();
    for i in 0..n {
        let v = model.variable(var(i));
        let (l, h) = if infeasible {
            (v.lower(), v.upper())
        } else {
            (lo[i], hi[i])
        };
        let id = match v.kind() {
            crate::model::VarKind::Integer => out.integer(v.name().to_owned(), l, h),
            crate::model::VarKind::Continuous => out.continuous(v.name().to_owned(), l, h),
        };
        debug_assert_eq!(id.index(), i);
        if !infeasible && (h - l).abs() <= TOL {
            fixed.push((id, l));
        }
    }
    let mut removed_rows = 0;
    for (ci, c) in model.constraints().iter().enumerate() {
        if live[ci] || infeasible {
            let expr: crate::model::LinExpr = c.terms().iter().copied().collect();
            out.add_constraint(c.name().to_owned(), expr, c.sense(), c.rhs());
        } else {
            removed_rows += 1;
        }
    }
    let obj: crate::model::LinExpr = model.objective().iter().copied().collect();
    let obj = obj + model.objective_offset();
    out.set_objective(obj);

    Presolved {
        model: out,
        fixed,
        removed_rows,
        infeasible,
    }
}

fn var(i: usize) -> VarId {
    VarId(u32::try_from(i).expect("index fits"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, Model};
    use crate::solve::{SolveParams, SolveStatus};

    #[test]
    fn forcing_constraint_fixes_binaries() {
        let mut m = Model::minimize();
        let x = m.binary("x");
        let y = m.binary("y");
        m.add_ge("both", LinExpr::sum([x, y]), 2.0);
        let p = presolve(&m);
        assert!(!p.infeasible);
        assert_eq!(p.fixed, vec![(x, 1.0), (y, 1.0)]);
    }

    #[test]
    fn zero_cap_fixes_to_zero() {
        let mut m = Model::minimize();
        let x = m.binary("x");
        let y = m.binary("y");
        m.add_le("none", LinExpr::sum([x, y]), 0.0);
        let p = presolve(&m);
        assert_eq!(p.fixed, vec![(x, 0.0), (y, 0.0)]);
    }

    #[test]
    fn infeasible_by_activity_detected() {
        let mut m = Model::minimize();
        let x = m.binary("x");
        m.add_ge("impossible", LinExpr::term(1.0, x), 2.0);
        assert!(presolve(&m).infeasible);
    }

    #[test]
    fn conflicting_rows_detected_via_propagation() {
        let mut m = Model::minimize();
        let x = m.binary("x");
        let y = m.binary("y");
        m.add_ge("sum2", LinExpr::sum([x, y]), 2.0); // forces x = y = 1
        m.add_le("xzero", LinExpr::term(1.0, x), 0.0); // forces x = 0
        assert!(presolve(&m).infeasible);
    }

    #[test]
    fn redundant_rows_are_removed() {
        let mut m = Model::minimize();
        let x = m.binary("x");
        let y = m.binary("y");
        m.add_le("loose", LinExpr::sum([x, y]), 5.0); // always true
        m.add_ge("real", LinExpr::sum([x, y]), 1.0);
        let p = presolve(&m);
        assert_eq!(p.removed_rows, 1);
        assert_eq!(p.model.num_constraints(), 1);
    }

    #[test]
    fn integer_rounding_tightens_bounds() {
        let mut m = Model::minimize();
        let x = m.integer("x", 0.0, 10.0);
        // 2x <= 7 -> x <= 3 after integral rounding.
        m.add_le("half", LinExpr::term(2.0, x), 7.0);
        let p = presolve(&m);
        assert_eq!(p.model.variable(x).upper(), 3.0);
    }

    #[test]
    fn presolved_model_has_same_optimum() {
        // Random-ish small model solved both ways.
        let mut m = Model::maximize();
        let a = m.binary("a");
        let b = m.binary("b");
        let c = m.binary("c");
        let d = m.binary("d");
        m.set_objective(
            LinExpr::term(5.0, a)
                + LinExpr::term(4.0, b)
                + LinExpr::term(3.0, c)
                + LinExpr::term(6.0, d),
        );
        m.add_le(
            "cap",
            LinExpr::term(2.0, a)
                + LinExpr::term(3.0, b)
                + LinExpr::term(1.0, c)
                + LinExpr::term(4.0, d),
            6.0,
        );
        m.add_ge("need_a", LinExpr::term(1.0, a), 1.0); // fixes a
        let p = presolve(&m);
        assert!(p.fixed.contains(&(a, 1.0)));
        let params = SolveParams::default();
        let r1 = m.solve(&params);
        let r2 = p.model.solve(&params);
        assert_eq!(r1.status(), SolveStatus::Optimal);
        assert_eq!(r2.status(), SolveStatus::Optimal);
        assert!((r1.objective().unwrap() - r2.objective().unwrap()).abs() < 1e-6);
    }

    #[test]
    fn objective_offset_survives() {
        let mut m = Model::minimize();
        let x = m.binary("x");
        m.set_objective(LinExpr::term(2.0, x) + 7.0);
        let p = presolve(&m);
        assert_eq!(p.model.objective_offset(), 7.0);
    }

    #[test]
    fn continuous_bounds_tighten_without_rounding() {
        let mut m = Model::minimize();
        let x = m.continuous("x", 0.0, 10.0);
        m.add_le("half", LinExpr::term(2.0, x), 7.0);
        let p = presolve(&m);
        assert!((p.model.variable(x).upper() - 3.5).abs() < 1e-9);
    }
}
