#![allow(clippy::needless_range_loop)] // factorization kernels read clearer indexed

//! Bounded-variable two-phase primal **revised** simplex over sparse
//! columns.
//!
//! The solver works on an internal standard form: minimize `c·x` subject to
//! `A x = b` with finite bounds `lo ≤ x ≤ hi` on every variable (slack
//! columns included — their bounds encode the original sense). Compared to
//! the dense predecessor (kept as [`crate::dense`] for baselines and
//! cross-checks) this core:
//!
//! - stores the constraint matrix in **CSC** (compressed sparse column)
//!   form — one flat `(row, value)` stream with column pointers — so
//!   pricing and FTRAN touch only structural nonzeros;
//! - represents the basis inverse as an **LU factorization plus an
//!   eta-file** (product-form updates): each pivot appends one sparse eta
//!   vector instead of rewriting an m×m inverse, and the basis is
//!   refactorized from scratch every [`REFACTOR_EVERY`] pivots (or on
//!   numerical breakdown) for hygiene;
//! - prices with **devex** reference weights instead of Dantzig's rule,
//!   falling back to Bland's rule under prolonged degeneracy;
//! - accepts a **warm-start basis** (and returns the optimal basis), the
//!   hook branch-and-bound uses to re-solve child LPs in a handful of
//!   iterations instead of from the all-slack basis.

/// Feasibility / optimality tolerance on variable values.
const FEAS_TOL: f64 = 1e-7;
/// Reduced-cost tolerance.
const COST_TOL: f64 = 1e-7;
/// Minimum pivot magnitude.
const PIVOT_TOL: f64 = 1e-9;
/// Eta vectors accumulated between basis refactorizations.
pub(crate) const REFACTOR_EVERY: usize = 96;

/// How often the LP loops poll the caller's cancellation token; a clock
/// read every 64 iterations is noise next to the algebra.
const CANCEL_POLL_EVERY: usize = 64;
/// Degenerate iterations before switching to Bland's rule.
const BLAND_AFTER: usize = 64;
/// Devex weights above this trigger a reference-framework reset.
const DEVEX_RESET: f64 = 1e12;

/// A sparse column of the constraint matrix, as `(row, value)` pairs in
/// strictly increasing row order.
pub(crate) type SparseCol = Vec<(usize, f64)>;

/// Compressed sparse column storage for the constraint matrix.
#[derive(Debug, Clone)]
pub(crate) struct Csc {
    /// `col_ptr[j]..col_ptr[j+1]` slices `row_idx`/`val` for column `j`.
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    val: Vec<f64>,
}

impl Csc {
    /// Flattens per-column `(row, value)` lists into CSC form.
    fn from_cols(m: usize, cols: &[SparseCol]) -> Csc {
        let nnz: usize = cols.iter().map(Vec::len).sum();
        let mut col_ptr = Vec::with_capacity(cols.len() + 1);
        let mut row_idx = Vec::with_capacity(nnz);
        let mut val = Vec::with_capacity(nnz);
        col_ptr.push(0);
        for col in cols {
            debug_assert!(
                col.windows(2).all(|w| w[0].0 < w[1].0),
                "column rows must be strictly increasing"
            );
            for &(row, a) in col {
                debug_assert!(row < m, "row {row} out of range for {m} rows");
                if a != 0.0 {
                    row_idx.push(row);
                    val.push(a);
                }
            }
            col_ptr.push(row_idx.len());
        }
        Csc {
            col_ptr,
            row_idx,
            val,
        }
    }

    fn num_cols(&self) -> usize {
        self.col_ptr.len() - 1
    }

    /// Iterates column `j` as `(row, value)` pairs.
    pub(crate) fn col(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        self.row_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.val[lo..hi].iter().copied())
    }
}

/// Standard-form LP: minimize `cost·x` s.t. `A x = b`, `lo ≤ x ≤ hi`.
#[derive(Debug, Clone)]
pub(crate) struct LpProblem {
    pub csc: Csc,
    pub cost: Vec<f64>,
    pub lo: Vec<f64>,
    pub hi: Vec<f64>,
    pub b: Vec<f64>,
}

impl LpProblem {
    /// Builds the problem from per-column sparse lists (rows ascending).
    pub(crate) fn from_cols(
        cols: &[SparseCol],
        cost: Vec<f64>,
        lo: Vec<f64>,
        hi: Vec<f64>,
        b: Vec<f64>,
    ) -> LpProblem {
        let csc = Csc::from_cols(b.len(), cols);
        debug_assert_eq!(csc.num_cols(), cost.len());
        LpProblem {
            csc,
            cost,
            lo,
            hi,
            b,
        }
    }

    pub(crate) fn num_rows(&self) -> usize {
        self.b.len()
    }

    pub(crate) fn num_vars(&self) -> usize {
        self.cost.len()
    }
}

/// Basic/nonbasic state of one standard-form variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VarStatus {
    /// Basic, occupying the given row of the basis.
    Basic(usize),
    /// Nonbasic at its lower bound.
    Lower,
    /// Nonbasic at its upper bound.
    Upper,
}

/// A simplex basis: enough state to warm-start a related LP (same columns,
/// possibly different bounds) from a previous optimum.
#[derive(Debug, Clone)]
pub(crate) struct Basis {
    /// Per-variable status.
    pub status: Vec<VarStatus>,
    /// Variable occupying each basis row.
    pub basis: Vec<usize>,
}

impl Basis {
    /// Structural sanity check against a problem's dimensions.
    fn fits(&self, prob: &LpProblem) -> bool {
        self.status.len() == prob.num_vars()
            && self.basis.len() == prob.num_rows()
            && self
                .basis
                .iter()
                .enumerate()
                .all(|(row, &v)| v < self.status.len() && self.status[v] == VarStatus::Basic(row))
            && self
                .status
                .iter()
                .filter(|s| matches!(s, VarStatus::Basic(_)))
                .count()
                == self.basis.len()
    }
}

/// Result of an LP solve.
#[derive(Debug, Clone)]
pub(crate) enum LpOutcome {
    /// Optimal solution found; `x` covers every standard-form variable and
    /// `basis` can warm-start a neighbouring LP.
    Optimal {
        x: Vec<f64>,
        objective: f64,
        basis: Basis,
    },
    /// No feasible point exists.
    Infeasible,
    /// Genuine iteration exhaustion: `max_iters` pivots without
    /// convergence. Poisons proof claims upstream.
    IterLimit,
    /// The caller's deadline or cancellation token tripped mid-solve: a
    /// clean budget stop, *not* a solver failure.
    Cancelled,
    /// Numerical breakdown (singular basis that refactorization could not
    /// repair). Poisons proof claims upstream.
    Numerics,
}

/// An LP outcome plus the effort it took.
#[derive(Debug, Clone)]
pub(crate) struct LpResult {
    pub outcome: LpOutcome,
    /// Simplex iterations (phase 1 + phase 2).
    pub iterations: usize,
    /// Basis (re)factorizations, the initial one included.
    pub refactorizations: usize,
}

/// Dense row-major LU factors of the basis matrix with partial pivoting:
/// `P·B = L·U`, L unit-lower (strict part stored below the diagonal), U
/// upper. Solves skip zero right-hand-side entries, so FTRANs of sparse
/// columns stay cheap even though storage is dense.
struct LuFactors {
    m: usize,
    lu: Vec<f64>,
    /// Row swapped with row `k` at elimination step `k`.
    piv: Vec<usize>,
}

impl LuFactors {
    /// Factorizes the basis columns of `prob`; `None` when singular.
    fn factorize(prob: &LpProblem, basis: &[usize]) -> Option<LuFactors> {
        let m = basis.len();
        let mut lu = vec![0.0; m * m];
        for (col_idx, &var) in basis.iter().enumerate() {
            for (row, a) in prob.csc.col(var) {
                lu[row * m + col_idx] = a;
            }
        }
        let mut piv = vec![0; m];
        for k in 0..m {
            let mut best = k;
            let mut best_abs = lu[k * m + k].abs();
            for r in k + 1..m {
                let a = lu[r * m + k].abs();
                if a > best_abs {
                    best = r;
                    best_abs = a;
                }
            }
            if best_abs < PIVOT_TOL {
                return None;
            }
            piv[k] = best;
            if best != k {
                for c in 0..m {
                    lu.swap(k * m + c, best * m + c);
                }
            }
            let pivot = lu[k * m + k];
            for r in k + 1..m {
                let e = lu[r * m + k];
                if e == 0.0 {
                    continue; // sparse skip: most basis columns are slacks
                }
                let f = e / pivot;
                lu[r * m + k] = f;
                for c in k + 1..m {
                    let u = lu[k * m + c];
                    if u != 0.0 {
                        lu[r * m + c] -= f * u;
                    }
                }
            }
        }
        Some(LuFactors { m, lu, piv })
    }

    /// Solves `B x = rhs` in place.
    fn solve(&self, x: &mut [f64]) {
        let m = self.m;
        for k in 0..m {
            let p = self.piv[k];
            if p != k {
                x.swap(k, p);
            }
        }
        // L forward solve (unit diagonal), column-oriented to skip zeros.
        for k in 0..m {
            let xk = x[k];
            if xk == 0.0 {
                continue;
            }
            for r in k + 1..m {
                let l = self.lu[r * m + k];
                if l != 0.0 {
                    x[r] -= l * xk;
                }
            }
        }
        // U back solve, column-oriented.
        for k in (0..m).rev() {
            let xk = x[k] / self.lu[k * m + k];
            x[k] = xk;
            if xk == 0.0 {
                continue;
            }
            for r in 0..k {
                let u = self.lu[r * m + k];
                if u != 0.0 {
                    x[r] -= u * xk;
                }
            }
        }
    }

    /// Solves `Bᵀ y = rhs` in place.
    fn solve_transpose(&self, x: &mut [f64]) {
        let m = self.m;
        // Uᵀ forward solve (Uᵀ is lower-triangular).
        for k in 0..m {
            let xk = x[k] / self.lu[k * m + k];
            x[k] = xk;
            if xk == 0.0 {
                continue;
            }
            for c in k + 1..m {
                let u = self.lu[k * m + c];
                if u != 0.0 {
                    x[c] -= u * xk;
                }
            }
        }
        // Lᵀ back solve (unit diagonal).
        for k in (0..m).rev() {
            let xk = x[k];
            if xk == 0.0 {
                continue;
            }
            for r in 0..k {
                let l = self.lu[k * m + r];
                if l != 0.0 {
                    x[r] -= l * xk;
                }
            }
        }
        for k in (0..m).rev() {
            let p = self.piv[k];
            if p != k {
                x.swap(k, p);
            }
        }
    }
}

/// One product-form update: after a pivot on row `row` with column
/// `alpha`, the new basis inverse is `E·B⁻¹` where `E` is the identity
/// with column `row` replaced by the eta vector stored here.
struct Eta {
    row: usize,
    /// `1 / alpha[row]`.
    diag: f64,
    /// `(i, -alpha[i] / alpha[row])` for `i != row`, nonzeros only.
    entries: Vec<(usize, f64)>,
}

impl Eta {
    fn from_pivot(alpha: &[f64], row: usize) -> Eta {
        let piv = alpha[row];
        let diag = 1.0 / piv;
        let entries = alpha
            .iter()
            .enumerate()
            .filter(|&(i, &a)| i != row && a != 0.0)
            .map(|(i, &a)| (i, -a * diag))
            .collect();
        Eta { row, diag, entries }
    }

    /// `x := E x` (FTRAN step).
    fn ftran(&self, x: &mut [f64]) {
        let t = x[self.row];
        if t == 0.0 {
            return;
        }
        x[self.row] = self.diag * t;
        for &(i, v) in &self.entries {
            x[i] += v * t;
        }
    }

    /// `y := Eᵀ y` (BTRAN step).
    fn btran(&self, x: &mut [f64]) {
        let mut v = self.diag * x[self.row];
        for &(i, w) in &self.entries {
            v += w * x[i];
        }
        x[self.row] = v;
    }
}

struct Tableau<'a> {
    prob: &'a LpProblem,
    m: usize,
    lu: LuFactors,
    etas: Vec<Eta>,
    /// Variable occupying each basis row.
    basis: Vec<usize>,
    status: Vec<VarStatus>,
    /// Current value of every variable.
    x: Vec<f64>,
    /// Devex reference weights, per variable.
    devex: Vec<f64>,
    degenerate_streak: usize,
    refactorizations: usize,
}

impl<'a> Tableau<'a> {
    /// Builds the tableau from a warm-start basis when one is given and
    /// still factorizes; otherwise from the all-slack basis (the *last*
    /// `m` columns form an identity block, guaranteed by the caller).
    fn new(prob: &'a LpProblem, warm: Option<&Basis>) -> Tableau<'a> {
        let m = prob.num_rows();
        let n = prob.num_vars();
        let warm = warm.filter(|b| b.fits(prob));
        let (status, basis, lu) = match warm {
            Some(b) => match LuFactors::factorize(prob, &b.basis) {
                Some(lu) => (b.status.clone(), b.basis.clone(), Some(lu)),
                None => Tableau::all_slack(prob),
            },
            None => Tableau::all_slack(prob),
        };
        let lu = lu.expect("the all-slack identity basis always factorizes");
        let mut x = vec![0.0; n];
        for j in 0..n {
            match status[j] {
                VarStatus::Basic(_) => {}
                VarStatus::Lower => x[j] = prob.lo[j],
                VarStatus::Upper => x[j] = prob.hi[j],
            }
        }
        let mut t = Tableau {
            prob,
            m,
            lu,
            etas: Vec::new(),
            basis,
            status,
            x,
            devex: vec![1.0; n],
            degenerate_streak: 0,
            refactorizations: 1,
        };
        t.recompute_basics();
        t
    }

    /// The all-slack starting basis with nonbasics at the bound nearer
    /// zero (keeps initial activities small).
    fn all_slack(prob: &LpProblem) -> (Vec<VarStatus>, Vec<usize>, Option<LuFactors>) {
        let m = prob.num_rows();
        let n = prob.num_vars();
        let mut status = vec![VarStatus::Lower; n];
        let mut basis = Vec::with_capacity(m);
        for (row, var) in (n - m..n).enumerate() {
            debug_assert!(
                {
                    let col: Vec<(usize, f64)> = prob.csc.col(var).collect();
                    col == vec![(row, 1.0)]
                },
                "slack block must be the identity"
            );
            status[var] = VarStatus::Basic(row);
            basis.push(var);
        }
        for j in 0..n - m {
            if prob.lo[j].abs() > prob.hi[j].abs() {
                status[j] = VarStatus::Upper;
            }
        }
        let lu = LuFactors::factorize(prob, &basis);
        (status, basis, lu)
    }

    /// Extracts the basis for warm-starting a neighbouring LP.
    fn snapshot(&self) -> Basis {
        Basis {
            status: self.status.clone(),
            basis: self.basis.clone(),
        }
    }

    /// `α := B⁻¹ rhs` in place, through the LU factors and the eta file.
    fn ftran(&self, x: &mut [f64]) {
        self.lu.solve(x);
        for eta in &self.etas {
            eta.ftran(x);
        }
    }

    /// `y := B⁻ᵀ rhs` in place (etas in reverse, then the factors).
    fn btran(&self, x: &mut [f64]) {
        for eta in self.etas.iter().rev() {
            eta.btran(x);
        }
        self.lu.solve_transpose(x);
    }

    /// `α = B⁻¹ A_j` for a structural column.
    fn ftran_col(&self, j: usize) -> Vec<f64> {
        let mut alpha = vec![0.0; self.m];
        for (row, a) in self.prob.csc.col(j) {
            alpha[row] = a;
        }
        self.ftran(&mut alpha);
        alpha
    }

    /// Recomputes basic variable values `x_B = B⁻¹ (b − N x_N)`.
    fn recompute_basics(&mut self) {
        let mut rhs = self.prob.b.clone();
        for j in 0..self.prob.num_vars() {
            if matches!(self.status[j], VarStatus::Basic(_)) || self.x[j] == 0.0 {
                continue;
            }
            let xj = self.x[j];
            for (row, a) in self.prob.csc.col(j) {
                rhs[row] -= a * xj;
            }
        }
        self.ftran(&mut rhs);
        for (i, v) in rhs.into_iter().enumerate() {
            self.x[self.basis[i]] = v;
        }
    }

    /// Refactorizes the basis from scratch, clearing the eta file.
    /// Returns `false` when the basis matrix is numerically singular (the
    /// previous factors are kept in that case).
    fn refactorize(&mut self) -> bool {
        match LuFactors::factorize(self.prob, &self.basis) {
            Some(lu) => {
                self.lu = lu;
                self.etas.clear();
                self.refactorizations += 1;
                true
            }
            None => false,
        }
    }

    /// Total bound violation over basic variables (phase-1 objective).
    fn infeasibility(&self) -> f64 {
        self.basis
            .iter()
            .map(|&v| {
                let x = self.x[v];
                (self.prob.lo[v] - x).max(0.0) + (x - self.prob.hi[v]).max(0.0)
            })
            .sum()
    }

    /// Phase-1 cost of a basic variable given its current value.
    fn phase1_cost(&self, var: usize) -> f64 {
        let x = self.x[var];
        if x > self.prob.hi[var] + FEAS_TOL {
            1.0
        } else if x < self.prob.lo[var] - FEAS_TOL {
            -1.0
        } else {
            0.0
        }
    }

    /// `y = B⁻ᵀ c_B` for the given basic cost vector.
    fn duals(&self, cb: &[f64]) -> Vec<f64> {
        let mut y = cb.to_vec();
        self.btran(&mut y);
        y
    }

    /// Devex weight maintenance after a pivot: entering column `q` took
    /// over row `r` from `leave_var`, with tableau column `alpha`.
    fn update_devex(&mut self, q: usize, r: usize, leave_var: usize, alpha: &[f64]) {
        let ar = alpha[r];
        let wq = self.devex[q].max(1.0);
        // Pivot row of the tableau over nonbasic columns: ρ = eᵣᵀ B⁻¹ A.
        let mut z = vec![0.0; self.m];
        z[r] = 1.0;
        self.btran(&mut z);
        let scale = wq / (ar * ar);
        let mut overflow = false;
        for j in 0..self.prob.num_vars() {
            if j == q || matches!(self.status[j], VarStatus::Basic(_)) {
                continue;
            }
            let mut rho = 0.0;
            for (row, a) in self.prob.csc.col(j) {
                let zr = z[row];
                if zr != 0.0 {
                    rho += zr * a;
                }
            }
            if rho != 0.0 {
                let cand = rho * rho * scale;
                if cand > self.devex[j] {
                    self.devex[j] = cand;
                    overflow |= cand > DEVEX_RESET;
                }
            }
        }
        let lw = scale.max(1.0);
        self.devex[leave_var] = lw;
        if overflow || lw > DEVEX_RESET {
            // Start a fresh reference framework.
            self.devex.fill(1.0);
        }
    }

    /// One simplex iteration for the given variable costs.
    /// `phase1` relaxes the ratio test so infeasible basics block only at
    /// the bound they currently violate.
    /// Returns `true` if a step was taken, `false` at (phase-)optimality.
    fn iterate(&mut self, costs: &[f64], phase1: bool) -> Result<bool, SimplexNumerics> {
        let bland = self.degenerate_streak >= BLAND_AFTER;
        let cb: Vec<f64> = self.basis.iter().map(|&v| costs[v]).collect();
        let y = self.duals(&cb);

        // Devex pricing: among improving nonbasic columns, maximize
        // d²/weight (Bland: lowest index, unweighted).
        let mut entering: Option<(usize, f64, bool)> = None; // (var, score, increase)
        for j in 0..self.prob.num_vars() {
            let dir = match self.status[j] {
                VarStatus::Basic(_) => continue,
                VarStatus::Lower => true,
                VarStatus::Upper => false,
            };
            if self.prob.hi[j] - self.prob.lo[j] < FEAS_TOL {
                continue; // fixed variable can never improve
            }
            let mut d = costs[j];
            for (row, a) in self.prob.csc.col(j) {
                let yr = y[row];
                if yr != 0.0 {
                    d -= yr * a;
                }
            }
            let improving = if dir { d < -COST_TOL } else { d > COST_TOL };
            if !improving {
                continue;
            }
            if bland {
                entering = Some((j, d * d, dir));
                break;
            }
            let score = d * d / self.devex[j];
            if entering.as_ref().is_none_or(|&(_, best, _)| score > best) {
                entering = Some((j, score, dir));
            }
        }
        let Some((j, _, increase)) = entering else {
            return Ok(false);
        };

        let alpha = self.ftran_col(j);
        // Basic variable i changes at rate `rate_i` per unit step t>=0.
        // increase: x_j := lo_j + t  => x_B -= alpha t   (rate -alpha)
        // decrease: x_j := hi_j - t  => x_B += alpha t   (rate +alpha)
        let sign = if increase { -1.0 } else { 1.0 };

        let mut t_limit = self.prob.hi[j] - self.prob.lo[j]; // bound flip
        let mut leaving: Option<(usize, f64, bool)> = None; // (row, |pivot|, at_upper)
        for (i, &a) in alpha.iter().enumerate() {
            let rate = sign * a;
            if rate.abs() < PIVOT_TOL {
                continue;
            }
            let v = self.basis[i];
            let xv = self.x[v];
            let (limit, at_upper) = if rate > 0.0 {
                // Variable increases: blocks at its upper bound. In phase 1 a
                // basic below its lower bound blocks at the *lower* bound
                // (where it becomes feasible).
                if phase1 && xv < self.prob.lo[v] - FEAS_TOL {
                    ((self.prob.lo[v] - xv) / rate, false)
                } else {
                    ((self.prob.hi[v] - xv) / rate, true)
                }
            } else {
                // Variable decreases: blocks at its lower bound; in phase 1 a
                // basic above its upper bound blocks at the upper bound.
                if phase1 && xv > self.prob.hi[v] + FEAS_TOL {
                    ((self.prob.hi[v] - xv) / rate, true)
                } else {
                    ((self.prob.lo[v] - xv) / rate, false)
                }
            };
            let limit = limit.max(0.0);
            let replace = match leaving {
                _ if limit > t_limit + FEAS_TOL => false,
                None => limit < t_limit - FEAS_TOL || limit <= t_limit,
                Some((row, best_piv, _)) => {
                    if limit < t_limit - FEAS_TOL {
                        true
                    } else if bland {
                        self.basis[i] < self.basis[row]
                    } else {
                        rate.abs() > best_piv
                    }
                }
            };
            if replace {
                if limit < t_limit {
                    t_limit = limit;
                }
                leaving = Some((i, rate.abs(), at_upper));
            }
        }

        let t = t_limit.max(0.0);
        if t < FEAS_TOL {
            self.degenerate_streak += 1;
            if self.degenerate_streak > BLAND_AFTER * 64 {
                return Err(SimplexNumerics);
            }
        } else {
            self.degenerate_streak = 0;
        }

        // Apply the step to all basic variables.
        for (i, &a) in alpha.iter().enumerate() {
            let rate = sign * a;
            if rate != 0.0 {
                let v = self.basis[i];
                self.x[v] += rate * t;
            }
        }

        match leaving {
            None => {
                // Bound flip: entering variable runs to its other bound.
                self.status[j] = if increase {
                    self.x[j] = self.prob.hi[j];
                    VarStatus::Upper
                } else {
                    self.x[j] = self.prob.lo[j];
                    VarStatus::Lower
                };
            }
            Some((row, _, at_upper)) => {
                let piv = alpha[row];
                if piv.abs() < PIVOT_TOL {
                    return Err(SimplexNumerics);
                }
                if !bland {
                    // Weight updates need the *pre-pivot* basis inverse.
                    let leave_var = self.basis[row];
                    self.update_devex(j, row, leave_var, &alpha);
                }
                // Entering variable takes its new value.
                self.x[j] = if increase {
                    self.prob.lo[j] + t
                } else {
                    self.prob.hi[j] - t
                };
                // Leaving variable snaps exactly to its blocking bound.
                let leave_var = self.basis[row];
                self.x[leave_var] = if at_upper {
                    self.prob.hi[leave_var]
                } else {
                    self.prob.lo[leave_var]
                };
                self.status[leave_var] = if at_upper {
                    VarStatus::Upper
                } else {
                    VarStatus::Lower
                };
                self.status[j] = VarStatus::Basic(row);
                self.basis[row] = j;
                // Product-form update: one sparse eta instead of an m×m
                // inverse rewrite.
                self.etas.push(Eta::from_pivot(&alpha, row));
            }
        }
        Ok(true)
    }
}

/// Internal marker for numerical breakdown (triggers refactorize/retry).
struct SimplexNumerics;

/// Solves a standard-form LP.
///
/// The last `b.len()` columns must form an identity (the slack block built
/// by the caller). With `warm = None` the solve starts from the all-slack
/// basis; a warm basis from a related LP (same columns, possibly tightened
/// bounds) typically converges in a handful of phase-1/phase-2 pivots. A
/// warm basis that no longer fits or factorizes falls back to cold start.
pub(crate) fn solve_lp(
    prob: &LpProblem,
    max_iters: usize,
    deadline: Option<std::time::Instant>,
    cancel: Option<&crate::Cancellation>,
    warm: Option<&Basis>,
) -> LpResult {
    debug_assert!(prob.num_vars() >= prob.num_rows());
    let mut t = Tableau::new(prob, warm);
    let mut iters = 0usize;

    // On large models a single degenerate LP can grind through the full
    // iteration limit for minutes — far past any caller deadline that is
    // only checked between branch-and-bound nodes. So the iteration loops
    // poll the caller's deadline and cancellation token as well (every
    // CANCEL_POLL_EVERY iterations; one iteration is O(m·nnz) algebra, so
    // the clock read is noise). A trip reports `Cancelled` — a clean
    // budget stop the branch-and-bound must *not* count as a failed or
    // abandoned subtree.
    let cancelled = |iters: usize| {
        iters % CANCEL_POLL_EVERY == 0
            && (cancel.is_some_and(crate::Cancellation::is_expired)
                || deadline.is_some_and(|d| std::time::Instant::now() > d))
    };
    macro_rules! done {
        ($outcome:expr) => {
            return LpResult {
                outcome: $outcome,
                iterations: iters,
                refactorizations: t.refactorizations,
            }
        };
    }

    // Phase 1: drive out infeasibility. Costs are recomputed every
    // iteration because they depend on which basics are out of bounds.
    while t.infeasibility() > FEAS_TOL * (1.0 + t.m as f64) {
        if iters >= max_iters {
            done!(LpOutcome::IterLimit);
        }
        if cancelled(iters) {
            done!(LpOutcome::Cancelled);
        }
        iters += 1;
        if t.etas.len() >= REFACTOR_EVERY {
            if !t.refactorize() {
                done!(LpOutcome::Numerics);
            }
            t.recompute_basics();
        }
        let mut costs = vec![0.0; prob.num_vars()];
        for &v in &t.basis {
            costs[v] = t.phase1_cost(v);
        }
        match t.iterate(&costs, true) {
            Ok(true) => {}
            Ok(false) => {
                // Phase-1 optimal with residual infeasibility: no solution.
                if t.infeasibility() > 1e-5 {
                    done!(LpOutcome::Infeasible);
                }
                // Numerically tiny residual: accept and continue.
                break;
            }
            Err(SimplexNumerics) => {
                if !t.refactorize() {
                    done!(LpOutcome::Numerics);
                }
                t.recompute_basics();
                t.degenerate_streak = BLAND_AFTER; // keep Bland engaged
            }
        }
    }

    // Phase 2: optimize the true objective from the feasible basis.
    loop {
        if iters >= max_iters {
            done!(LpOutcome::IterLimit);
        }
        if cancelled(iters) {
            done!(LpOutcome::Cancelled);
        }
        iters += 1;
        if t.etas.len() >= REFACTOR_EVERY {
            if !t.refactorize() {
                done!(LpOutcome::Numerics);
            }
            t.recompute_basics();
        }
        match t.iterate(&prob.cost, false) {
            Ok(true) => {
                // A phase-2 step must never reintroduce infeasibility; if it
                // does (numerics), refactorize and clean up.
                if t.infeasibility() > 1e-5 {
                    if !t.refactorize() {
                        done!(LpOutcome::Numerics);
                    }
                    t.recompute_basics();
                    if t.infeasibility() > 1e-5 {
                        // Fall back to a fresh phase-1 pass.
                        if let Some(out) =
                            resume_phase1(&mut t, &mut iters, max_iters, deadline, cancel)
                        {
                            done!(out);
                        }
                    }
                }
            }
            Ok(false) => break,
            Err(SimplexNumerics) => {
                if !t.refactorize() {
                    done!(LpOutcome::Numerics);
                }
                t.recompute_basics();
                t.degenerate_streak = BLAND_AFTER;
            }
        }
    }

    let objective = prob.cost.iter().zip(&t.x).map(|(c, x)| c * x).sum::<f64>();
    let basis = t.snapshot();
    done!(LpOutcome::Optimal {
        x: t.x,
        objective,
        basis,
    });
}

fn resume_phase1(
    t: &mut Tableau,
    iters: &mut usize,
    max_iters: usize,
    deadline: Option<std::time::Instant>,
    cancel: Option<&crate::Cancellation>,
) -> Option<LpOutcome> {
    while t.infeasibility() > FEAS_TOL * (1.0 + t.m as f64) {
        if *iters >= max_iters {
            return Some(LpOutcome::IterLimit);
        }
        let expired = *iters % CANCEL_POLL_EVERY == 0
            && (cancel.is_some_and(crate::Cancellation::is_expired)
                || deadline.is_some_and(|d| std::time::Instant::now() > d));
        if expired {
            return Some(LpOutcome::Cancelled);
        }
        *iters += 1;
        if t.etas.len() >= REFACTOR_EVERY {
            if !t.refactorize() {
                return Some(LpOutcome::Numerics);
            }
            t.recompute_basics();
        }
        let mut costs = vec![0.0; t.prob.num_vars()];
        for &v in &t.basis {
            costs[v] = t.phase1_cost(v);
        }
        match t.iterate(&costs, true) {
            Ok(true) => {}
            Ok(false) => return Some(LpOutcome::Infeasible),
            Err(SimplexNumerics) => {
                if !t.refactorize() {
                    return Some(LpOutcome::Numerics);
                }
                t.recompute_basics();
                t.degenerate_streak = BLAND_AFTER;
            }
        }
    }
    None
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// Builds a standard-form problem from dense rows `a·x (sense) b` with
    /// auto-generated slack columns. sense: -1 ≤, 0 =, +1 ≥.
    pub(crate) fn build(
        cost: &[f64],
        bounds: &[(f64, f64)],
        rows: &[(&[f64], i8, f64)],
    ) -> LpProblem {
        let n = cost.len();
        let m = rows.len();
        let mut cols: Vec<SparseCol> = vec![Vec::new(); n];
        let mut b = Vec::with_capacity(m);
        for (r, &(coeffs, _, rhs)) in rows.iter().enumerate() {
            assert_eq!(coeffs.len(), n);
            for (j, &a) in coeffs.iter().enumerate() {
                if a != 0.0 {
                    cols[j].push((r, a));
                }
            }
            b.push(rhs);
        }
        let mut lo: Vec<f64> = bounds.iter().map(|b| b.0).collect();
        let mut hi: Vec<f64> = bounds.iter().map(|b| b.1).collect();
        let mut full_cost = cost.to_vec();
        const BIG: f64 = 1e9;
        for (r, &(_, sense, _)) in rows.iter().enumerate() {
            cols.push(vec![(r, 1.0)]);
            full_cost.push(0.0);
            match sense {
                -1 => {
                    lo.push(0.0);
                    hi.push(BIG);
                }
                0 => {
                    lo.push(0.0);
                    hi.push(0.0);
                }
                1 => {
                    lo.push(-BIG);
                    hi.push(0.0);
                }
                _ => unreachable!(),
            }
        }
        LpProblem::from_cols(&cols, full_cost, lo, hi, b)
    }

    fn assert_optimal(prob: &LpProblem, expect_obj: f64) -> Vec<f64> {
        match solve_lp(prob, 10_000, None, None, None).outcome {
            LpOutcome::Optimal { x, objective, .. } => {
                assert!(
                    (objective - expect_obj).abs() < 1e-5,
                    "objective {objective} != {expect_obj}"
                );
                x
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn trivial_min_at_lower_bounds() {
        // min x + y, x,y in [1,5], no constraints beyond a loose row.
        let p = build(
            &[1.0, 1.0],
            &[(1.0, 5.0), (1.0, 5.0)],
            &[(&[1.0, 1.0], -1, 100.0)],
        );
        let x = assert_optimal(&p, 2.0);
        assert!((x[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn classic_max_lp() {
        // max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18  (Dantzig's example),
        // optimum 36 at (2, 6). As minimization of -obj.
        let p = build(
            &[-3.0, -5.0],
            &[(0.0, 100.0), (0.0, 100.0)],
            &[
                (&[1.0, 0.0], -1, 4.0),
                (&[0.0, 2.0], -1, 12.0),
                (&[3.0, 2.0], -1, 18.0),
            ],
        );
        let x = assert_optimal(&p, -36.0);
        assert!((x[0] - 2.0).abs() < 1e-6);
        assert!((x[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints_phase1() {
        // min 2x + 3y s.t. x + y = 10, x - y = 2 -> x=6, y=4, obj 24.
        let p = build(
            &[2.0, 3.0],
            &[(0.0, 100.0), (0.0, 100.0)],
            &[(&[1.0, 1.0], 0, 10.0), (&[1.0, -1.0], 0, 2.0)],
        );
        let x = assert_optimal(&p, 24.0);
        assert!((x[0] - 6.0).abs() < 1e-6);
        assert!((x[1] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn ge_constraints_need_phase1() {
        // min x + 2y s.t. x + y >= 4, y >= 1 -> x=3, y=1, obj 5.
        let p = build(
            &[1.0, 2.0],
            &[(0.0, 50.0), (0.0, 50.0)],
            &[(&[1.0, 1.0], 1, 4.0), (&[0.0, 1.0], 1, 1.0)],
        );
        let x = assert_optimal(&p, 5.0);
        assert!((x[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        // x <= 1 and x >= 3 with x in [0,10].
        let p = build(
            &[1.0],
            &[(0.0, 10.0)],
            &[(&[1.0], -1, 1.0), (&[1.0], 1, 3.0)],
        );
        assert!(matches!(
            solve_lp(&p, 10_000, None, None, None).outcome,
            LpOutcome::Infeasible
        ));
    }

    #[test]
    fn bounds_act_as_constraints() {
        // min -x with x in [0, 7] and a loose row: answer -7 (upper bound).
        let p = build(&[-1.0], &[(0.0, 7.0)], &[(&[1.0], -1, 100.0)]);
        let x = assert_optimal(&p, -7.0);
        assert!((x[0] - 7.0).abs() < 1e-6);
    }

    #[test]
    fn negative_lower_bounds() {
        // min x + y, x in [-5, 5], y in [-3, 3], x + y >= -6:
        // x+y >= -6 binds: optimum -6 (e.g. x=-5, y=-1).
        let p = build(
            &[1.0, 1.0],
            &[(-5.0, 5.0), (-3.0, 3.0)],
            &[(&[1.0, 1.0], 1, -6.0)],
        );
        let x = assert_optimal(&p, -6.0);
        assert!(x[0] + x[1] >= -6.0 - 1e-6);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Multiple redundant constraints at the optimum.
        let p = build(
            &[-1.0, -1.0],
            &[(0.0, 10.0), (0.0, 10.0)],
            &[
                (&[1.0, 1.0], -1, 4.0),
                (&[1.0, 1.0], -1, 4.0),
                (&[2.0, 2.0], -1, 8.0),
                (&[1.0, 0.0], -1, 4.0),
                (&[0.0, 1.0], -1, 4.0),
            ],
        );
        assert_optimal(&p, -4.0);
    }

    #[test]
    fn fractional_lp_relaxation_of_knapsack() {
        // max 10a + 13b + 7c s.t. 5a + 6b + 4c <= 10, vars in [0,1].
        // LP optimum: b=1, a=4/5 -> 13 + 8 = 21.
        let p = build(
            &[-10.0, -13.0, -7.0],
            &[(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)],
            &[(&[5.0, 6.0, 4.0], -1, 10.0)],
        );
        assert_optimal(&p, -21.0);
    }

    #[test]
    fn fixed_variables_respected() {
        // y fixed at 2 by bounds; min x s.t. x + y >= 5 -> x=3.
        let p = build(
            &[1.0, 0.0],
            &[(0.0, 10.0), (2.0, 2.0)],
            &[(&[1.0, 1.0], 1, 5.0)],
        );
        let x = assert_optimal(&p, 3.0);
        assert!((x[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn klee_minty_cube_terminates() {
        // The classic worst case for Dantzig pricing in 3-D (devex does
        // not fall for it, but the optimum is what matters here):
        // max 100 x1 + 10 x2 + x3
        // s.t. x1 <= 1; 20 x1 + x2 <= 100; 200 x1 + 20 x2 + x3 <= 10000.
        // Optimum 10000 at (0, 0, 10000).
        let p = build(
            &[-100.0, -10.0, -1.0],
            &[(0.0, 1e6), (0.0, 1e6), (0.0, 1e6)],
            &[
                (&[1.0, 0.0, 0.0], -1, 1.0),
                (&[20.0, 1.0, 0.0], -1, 100.0),
                (&[200.0, 20.0, 1.0], -1, 10_000.0),
            ],
        );
        let x = assert_optimal(&p, -10_000.0);
        assert!((x[2] - 10_000.0).abs() < 1e-4);
    }

    #[test]
    fn expired_deadline_and_cancellation_abort_the_lp_promptly() {
        // A perfectly solvable LP must still be abandoned as `Cancelled`
        // when the caller's wall-clock budget is already gone — the
        // regression was a single degenerate LP grinding through the
        // full iteration limit for minutes between deadline checks.
        let p = build(
            &[-3.0, -5.0],
            &[(0.0, 100.0), (0.0, 100.0)],
            &[
                (&[1.0, 0.0], -1, 4.0),
                (&[0.0, 2.0], -1, 12.0),
                (&[3.0, 2.0], -1, 18.0),
            ],
        );
        let past = std::time::Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(matches!(
            solve_lp(&p, 10_000, Some(past), None, None).outcome,
            LpOutcome::Cancelled
        ));
        let expired = crate::Cancellation::with_deadline(std::time::Duration::ZERO);
        assert!(matches!(
            solve_lp(&p, 10_000, None, Some(&expired), None).outcome,
            LpOutcome::Cancelled
        ));
        // With live budgets the same LP still solves.
        let live = crate::Cancellation::with_deadline(std::time::Duration::from_secs(60));
        assert!(matches!(
            solve_lp(
                &p,
                10_000,
                Some(std::time::Instant::now() + std::time::Duration::from_secs(60)),
                Some(&live),
                None,
            )
            .outcome,
            LpOutcome::Optimal { .. }
        ));
    }

    #[test]
    fn iteration_exhaustion_reports_iter_limit_not_cancelled() {
        let p = build(
            &[-3.0, -5.0],
            &[(0.0, 100.0), (0.0, 100.0)],
            &[
                (&[1.0, 0.0], -1, 4.0),
                (&[0.0, 2.0], -1, 12.0),
                (&[3.0, 2.0], -1, 18.0),
            ],
        );
        assert!(matches!(
            solve_lp(&p, 0, None, None, None).outcome,
            LpOutcome::IterLimit
        ));
    }

    #[test]
    fn highly_redundant_degenerate_cluster() {
        // Many constraints intersecting at the optimum; exercises the
        // Bland fallback anti-cycling path.
        let rows: Vec<(Vec<f64>, i8, f64)> = (0..12)
            .map(|k| {
                let a = 1.0 + (k % 3) as f64;
                let b = 1.0 + ((k + 1) % 3) as f64;
                (vec![a, b], -1i8, a + b) // all tight at (1, 1)
            })
            .collect();
        let rows_ref: Vec<(&[f64], i8, f64)> = rows
            .iter()
            .map(|(v, s, r)| (v.as_slice(), *s, *r))
            .collect();
        let p = build(&[-1.0, -1.0], &[(0.0, 10.0), (0.0, 10.0)], &rows_ref);
        let x = assert_optimal(&p, -2.0);
        assert!((x[0] - 1.0).abs() < 1e-6 && (x[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn transportation_like_equalities() {
        // Two supplies (3, 4), two demands (5, 2); min cost flows.
        // vars: f11,f12,f21,f22; cost 4,6,2,3.
        // supply rows: f11+f12=3, f21+f22=4; demand: f11+f21=5, f12+f22=2.
        // Optimum: f11=3,f12=0,f21=2,f22=2 cost=12+4+6=22.
        let p = build(
            &[4.0, 6.0, 2.0, 3.0],
            &[(0.0, 10.0); 4],
            &[
                (&[1.0, 1.0, 0.0, 0.0], 0, 3.0),
                (&[0.0, 0.0, 1.0, 1.0], 0, 4.0),
                (&[1.0, 0.0, 1.0, 0.0], 0, 5.0),
                (&[0.0, 1.0, 0.0, 1.0], 0, 2.0),
            ],
        );
        assert_optimal(&p, 22.0);
    }

    #[test]
    fn warm_start_from_own_optimum_resolves_in_a_handful_of_pivots() {
        let p = build(
            &[-3.0, -5.0],
            &[(0.0, 100.0), (0.0, 100.0)],
            &[
                (&[1.0, 0.0], -1, 4.0),
                (&[0.0, 2.0], -1, 12.0),
                (&[3.0, 2.0], -1, 18.0),
            ],
        );
        let cold = solve_lp(&p, 10_000, None, None, None);
        let LpOutcome::Optimal { basis, .. } = cold.outcome else {
            panic!("cold solve must be optimal");
        };
        let warm = solve_lp(&p, 10_000, None, None, Some(&basis));
        let LpOutcome::Optimal { objective, .. } = warm.outcome else {
            panic!("warm solve must be optimal");
        };
        assert!((objective - -36.0).abs() < 1e-5);
        assert!(
            warm.iterations <= 2,
            "re-solving from the optimal basis took {} pivots",
            warm.iterations
        );
        assert!(warm.iterations < cold.iterations);
    }

    #[test]
    fn warm_start_survives_bound_tightening() {
        // Branch-and-bound's exact usage: tighten one variable's bounds
        // and re-solve from the parent basis.
        let p = build(
            &[-10.0, -13.0, -7.0],
            &[(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)],
            &[(&[5.0, 6.0, 4.0], -1, 10.0)],
        );
        let cold = solve_lp(&p, 10_000, None, None, None);
        let LpOutcome::Optimal { basis, .. } = cold.outcome else {
            panic!("cold solve must be optimal");
        };
        // Branch a = 0 (a was fractional 4/5 at the LP optimum).
        let mut child = p.clone();
        child.hi[0] = 0.0;
        let warm = solve_lp(&child, 10_000, None, None, Some(&basis));
        let LpOutcome::Optimal { objective, .. } = warm.outcome else {
            panic!("warm child must be optimal");
        };
        // b=1, c=1 -> 20.
        assert!((objective - -20.0).abs() < 1e-5);
        let coldc = solve_lp(&child, 10_000, None, None, None);
        let LpOutcome::Optimal {
            objective: cold_obj,
            ..
        } = coldc.outcome
        else {
            panic!("cold child must be optimal");
        };
        assert!((objective - cold_obj).abs() < 1e-6, "warm == cold optimum");
    }

    #[test]
    fn stale_basis_falls_back_to_cold_start() {
        let p = build(
            &[1.0, 1.0],
            &[(1.0, 5.0), (1.0, 5.0)],
            &[(&[1.0, 1.0], -1, 100.0)],
        );
        // A basis for a different (larger) problem must be rejected.
        let bogus = Basis {
            status: vec![VarStatus::Lower; 99],
            basis: vec![0; 7],
        };
        assert!(matches!(
            solve_lp(&p, 10_000, None, None, Some(&bogus)).outcome,
            LpOutcome::Optimal { .. }
        ));
    }

    #[test]
    fn eta_file_matches_fresh_refactorization_after_long_pivot_runs() {
        // Drive a transportation-like LP to optimality (many pivots), then
        // verify the eta-file representation of B⁻¹ agrees with a fresh
        // LU refactorization on FTRANs of every structural column.
        let p = build(
            &[4.0, 6.0, 2.0, 3.0, 1.0, 2.5],
            &[(0.0, 10.0); 6],
            &[
                (&[1.0, 1.0, 0.0, 0.0, 1.0, 0.0], 0, 3.0),
                (&[0.0, 0.0, 1.0, 1.0, 0.0, 1.0], 0, 4.0),
                (&[1.0, 0.0, 1.0, 0.0, 1.0, 1.0], 0, 5.0),
                (&[0.0, 1.0, 0.0, 1.0, 0.0, 0.0], 0, 2.0),
            ],
        );
        let mut t = Tableau::new(&p, None);
        let mut pivots = 0usize;
        // Phase 1 until feasible, then phase 2 — accumulating etas.
        for _ in 0..200 {
            let phase1 = t.infeasibility() > FEAS_TOL * (1.0 + t.m as f64);
            let costs = if phase1 {
                let mut c = vec![0.0; p.num_vars()];
                for &v in &t.basis {
                    c[v] = t.phase1_cost(v);
                }
                c
            } else {
                p.cost.clone()
            };
            match t.iterate(&costs, phase1) {
                Ok(true) => pivots += 1,
                Ok(false) | Err(SimplexNumerics) => break,
            }
        }
        assert!(pivots >= 2, "expected a real pivot run, got {pivots}");
        assert!(!t.etas.is_empty(), "pivot run must populate the eta file");
        // FTRAN every column through LU+etas, then through fresh factors.
        let via_etas: Vec<Vec<f64>> = (0..p.num_vars()).map(|j| t.ftran_col(j)).collect();
        assert!(t.refactorize(), "optimal basis must factorize");
        assert!(t.etas.is_empty());
        for (j, old) in via_etas.iter().enumerate() {
            let fresh = t.ftran_col(j);
            for (a, b) in old.iter().zip(&fresh) {
                assert!(
                    (a - b).abs() < 1e-8,
                    "column {j}: eta-file {a} vs refactorized {b}"
                );
            }
        }
    }

    #[test]
    fn refactorization_happens_on_long_runs() {
        // A chain model that needs > REFACTOR_EVERY pivots end to end.
        let n = REFACTOR_EVERY + 40;
        let rows: Vec<(Vec<f64>, i8, f64)> = (0..n)
            .map(|i| {
                let mut coeffs = vec![0.0; n];
                coeffs[i] = 1.0;
                if i > 0 {
                    coeffs[i - 1] = -0.5;
                }
                (coeffs, 1i8, 1.0)
            })
            .collect();
        let rows_ref: Vec<(&[f64], i8, f64)> = rows
            .iter()
            .map(|(v, s, r)| (v.as_slice(), *s, *r))
            .collect();
        let cost = vec![1.0; n];
        let bounds = vec![(0.0, 1e6); n];
        let p = build(&cost, &bounds, &rows_ref);
        let r = solve_lp(&p, 100_000, None, None, None);
        assert!(matches!(r.outcome, LpOutcome::Optimal { .. }));
        assert!(
            r.refactorizations >= 2,
            "a {}-pivot run must refactorize at least once beyond the \
             initial factorization (iterations: {}, refactorizations: {})",
            n,
            r.iterations,
            r.refactorizations
        );
    }
}
