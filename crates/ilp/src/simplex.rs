#![allow(clippy::needless_range_loop)] // dense linear algebra reads clearer indexed

//! Bounded-variable two-phase primal simplex with an explicit dense basis
//! inverse.
//!
//! The solver works on an internal standard form: minimize `c·x` subject to
//! `A x = b` with finite bounds `lo ≤ x ≤ hi` on every variable (slack
//! columns included — their bounds encode the original sense). The basis
//! inverse is kept as a dense `m×m` matrix updated with elementary row
//! operations on each pivot and refactorized from scratch periodically for
//! numerical hygiene. Problem sizes in this workspace are a few thousand
//! variables and rows, where this representation is simple and fast enough.

/// Feasibility / optimality tolerance on variable values.
const FEAS_TOL: f64 = 1e-7;
/// Reduced-cost tolerance.
const COST_TOL: f64 = 1e-7;
/// Minimum pivot magnitude.
const PIVOT_TOL: f64 = 1e-9;
/// Iterations between basis refactorizations.
const REFACTOR_EVERY: usize = 256;

/// How often the LP loops poll the caller's cancellation token; a clock
/// read every 64 dense iterations is noise next to the algebra.
const CANCEL_POLL_EVERY: usize = 64;
/// Degenerate iterations before switching to Bland's rule.
const BLAND_AFTER: usize = 64;

/// A sparse column of the constraint matrix.
pub(crate) type SparseCol = Vec<(usize, f64)>;

/// Standard-form LP: minimize `cost·x` s.t. `Σ_j col_j x_j = b`, `lo≤x≤hi`.
#[derive(Debug, Clone)]
pub(crate) struct LpProblem {
    pub cols: Vec<SparseCol>,
    pub cost: Vec<f64>,
    pub lo: Vec<f64>,
    pub hi: Vec<f64>,
    pub b: Vec<f64>,
}

impl LpProblem {
    fn num_rows(&self) -> usize {
        self.b.len()
    }

    fn num_vars(&self) -> usize {
        self.cols.len()
    }
}

/// Result of an LP solve.
#[derive(Debug, Clone)]
pub(crate) enum LpOutcome {
    /// Optimal solution found; `x` covers every standard-form variable.
    Optimal { x: Vec<f64>, objective: f64 },
    /// No feasible point exists.
    Infeasible,
    /// Iteration limit hit before convergence (numerical trouble).
    IterLimit,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarStatus {
    Basic(usize), // row index
    Lower,
    Upper,
}

struct Tableau<'a> {
    prob: &'a LpProblem,
    m: usize,
    /// Dense row-major m×m basis inverse.
    binv: Vec<f64>,
    /// Variable occupying each basis row.
    basis: Vec<usize>,
    status: Vec<VarStatus>,
    /// Current value of every variable.
    x: Vec<f64>,
    degenerate_streak: usize,
}

impl<'a> Tableau<'a> {
    /// Starts from the all-slack basis: the *last* `m` variables are assumed
    /// to form an identity block (guaranteed by the caller).
    fn new(prob: &'a LpProblem) -> Self {
        let m = prob.num_rows();
        let n = prob.num_vars();
        let mut status = vec![VarStatus::Lower; n];
        let mut basis = Vec::with_capacity(m);
        for (row, var) in (n - m..n).enumerate() {
            debug_assert_eq!(
                prob.cols[var],
                vec![(row, 1.0)],
                "slack block must be the identity"
            );
            status[var] = VarStatus::Basic(row);
            basis.push(var);
        }
        // Nonbasic structural vars start at the bound nearer to zero to keep
        // initial activities small.
        let mut x = vec![0.0; n];
        for j in 0..n {
            if matches!(status[j], VarStatus::Basic(_)) {
                continue;
            }
            x[j] = if prob.lo[j].abs() <= prob.hi[j].abs() {
                prob.lo[j]
            } else {
                status[j] = VarStatus::Upper;
                prob.hi[j]
            };
        }
        let mut binv = vec![0.0; m * m];
        for i in 0..m {
            binv[i * m + i] = 1.0;
        }
        let mut t = Tableau {
            prob,
            m,
            binv,
            basis,
            status,
            x,
            degenerate_streak: 0,
        };
        t.recompute_basics();
        t
    }

    /// Recomputes basic variable values `x_B = B⁻¹ (b − N x_N)`.
    fn recompute_basics(&mut self) {
        let m = self.m;
        let mut rhs = self.prob.b.clone();
        for (j, col) in self.prob.cols.iter().enumerate() {
            if matches!(self.status[j], VarStatus::Basic(_)) || self.x[j] == 0.0 {
                continue;
            }
            for &(row, a) in col {
                rhs[row] -= a * self.x[j];
            }
        }
        for i in 0..m {
            let mut v = 0.0;
            for k in 0..m {
                v += self.binv[i * m + k] * rhs[k];
            }
            self.x[self.basis[i]] = v;
        }
    }

    /// Rebuilds the dense basis inverse by Gauss-Jordan elimination.
    /// Returns `false` when the basis matrix is numerically singular.
    fn refactorize(&mut self) -> bool {
        let m = self.m;
        // Assemble B column-by-column from the basis variables.
        let mut a = vec![0.0; m * m]; // B, row-major
        for (col_idx, &var) in self.basis.iter().enumerate() {
            for &(row, coeff) in &self.prob.cols[var] {
                a[row * m + col_idx] = coeff;
            }
        }
        let mut inv = vec![0.0; m * m];
        for i in 0..m {
            inv[i * m + i] = 1.0;
        }
        for col in 0..m {
            // Partial pivoting.
            let mut best = col;
            for r in col + 1..m {
                if a[r * m + col].abs() > a[best * m + col].abs() {
                    best = r;
                }
            }
            if a[best * m + col].abs() < PIVOT_TOL {
                return false;
            }
            if best != col {
                for k in 0..m {
                    a.swap(col * m + k, best * m + k);
                    inv.swap(col * m + k, best * m + k);
                }
            }
            let p = a[col * m + col];
            for k in 0..m {
                a[col * m + k] /= p;
                inv[col * m + k] /= p;
            }
            for r in 0..m {
                if r == col {
                    continue;
                }
                let f = a[r * m + col];
                if f == 0.0 {
                    continue;
                }
                for k in 0..m {
                    a[r * m + k] -= f * a[col * m + k];
                    inv[r * m + k] -= f * inv[col * m + k];
                }
            }
        }
        self.binv = inv;
        true
    }

    /// Total bound violation over basic variables (phase-1 objective).
    fn infeasibility(&self) -> f64 {
        self.basis
            .iter()
            .map(|&v| {
                let x = self.x[v];
                (self.prob.lo[v] - x).max(0.0) + (x - self.prob.hi[v]).max(0.0)
            })
            .sum()
    }

    /// Phase-1 cost of a basic variable given its current value.
    fn phase1_cost(&self, var: usize) -> f64 {
        let x = self.x[var];
        if x > self.prob.hi[var] + FEAS_TOL {
            1.0
        } else if x < self.prob.lo[var] - FEAS_TOL {
            -1.0
        } else {
            0.0
        }
    }

    /// `y = c_B^T B⁻¹` for the given basic cost vector.
    fn duals(&self, cb: &[f64]) -> Vec<f64> {
        let m = self.m;
        let mut y = vec![0.0; m];
        for (i, &c) in cb.iter().enumerate() {
            if c == 0.0 {
                continue;
            }
            let row = &self.binv[i * m..(i + 1) * m];
            for (k, &b) in row.iter().enumerate() {
                y[k] += c * b;
            }
        }
        y
    }

    /// `α = B⁻¹ A_j`.
    fn ftran(&self, col: usize) -> Vec<f64> {
        let m = self.m;
        let mut alpha = vec![0.0; m];
        for &(row, a) in &self.prob.cols[col] {
            if a == 0.0 {
                continue;
            }
            for i in 0..m {
                alpha[i] += self.binv[i * m + row] * a;
            }
        }
        alpha
    }

    /// One simplex iteration for the given variable costs.
    /// `phase1` relaxes the ratio test so infeasible basics block only at
    /// the bound they currently violate.
    /// Returns `true` if a step was taken, `false` at (phase-)optimality.
    fn iterate(&mut self, costs: &[f64], phase1: bool) -> Result<bool, SimplexNumerics> {
        let bland = self.degenerate_streak >= BLAND_AFTER;
        let cb: Vec<f64> = self.basis.iter().map(|&v| costs[v]).collect();
        let y = self.duals(&cb);

        // Pricing: pick an improving nonbasic column.
        let mut entering: Option<(usize, f64, bool)> = None; // (var, |d|, increase)
        for j in 0..self.prob.num_vars() {
            let dir = match self.status[j] {
                VarStatus::Basic(_) => continue,
                VarStatus::Lower => true,
                VarStatus::Upper => false,
            };
            if self.prob.hi[j] - self.prob.lo[j] < FEAS_TOL {
                continue; // fixed variable can never improve
            }
            let mut d = costs[j];
            for &(row, a) in &self.prob.cols[j] {
                d -= y[row] * a;
            }
            let improving = if dir { d < -COST_TOL } else { d > COST_TOL };
            if !improving {
                continue;
            }
            if bland {
                entering = Some((j, d.abs(), dir));
                break;
            }
            if entering.as_ref().is_none_or(|&(_, best, _)| d.abs() > best) {
                entering = Some((j, d.abs(), dir));
            }
        }
        let Some((j, _, increase)) = entering else {
            return Ok(false);
        };

        let alpha = self.ftran(j);
        // Basic variable i changes at rate `rate_i` per unit step t>=0.
        // increase: x_j := lo_j + t  => x_B -= alpha t   (rate -alpha)
        // decrease: x_j := hi_j - t  => x_B += alpha t   (rate +alpha)
        let sign = if increase { -1.0 } else { 1.0 };

        let mut t_limit = self.prob.hi[j] - self.prob.lo[j]; // bound flip
        let mut leaving: Option<(usize, f64, bool)> = None; // (row, |pivot|, at_upper)
        for (i, &a) in alpha.iter().enumerate() {
            let rate = sign * a;
            if rate.abs() < PIVOT_TOL {
                continue;
            }
            let v = self.basis[i];
            let xv = self.x[v];
            let (limit, at_upper) = if rate > 0.0 {
                // Variable increases: blocks at its upper bound. In phase 1 a
                // basic below its lower bound blocks at the *lower* bound
                // (where it becomes feasible).
                if phase1 && xv < self.prob.lo[v] - FEAS_TOL {
                    ((self.prob.lo[v] - xv) / rate, false)
                } else {
                    ((self.prob.hi[v] - xv) / rate, true)
                }
            } else {
                // Variable decreases: blocks at its lower bound; in phase 1 a
                // basic above its upper bound blocks at the upper bound.
                if phase1 && xv > self.prob.hi[v] + FEAS_TOL {
                    ((self.prob.hi[v] - xv) / rate, true)
                } else {
                    ((self.prob.lo[v] - xv) / rate, false)
                }
            };
            let limit = limit.max(0.0);
            let replace = match leaving {
                _ if limit > t_limit + FEAS_TOL => false,
                None => limit < t_limit - FEAS_TOL || limit <= t_limit,
                Some((row, best_piv, _)) => {
                    if limit < t_limit - FEAS_TOL {
                        true
                    } else if bland {
                        self.basis[i] < self.basis[row]
                    } else {
                        rate.abs() > best_piv
                    }
                }
            };
            if replace {
                if limit < t_limit {
                    t_limit = limit;
                }
                leaving = Some((i, rate.abs(), at_upper));
            }
        }

        let t = t_limit.max(0.0);
        if t < FEAS_TOL {
            self.degenerate_streak += 1;
            if self.degenerate_streak > BLAND_AFTER * 64 {
                return Err(SimplexNumerics);
            }
        } else {
            self.degenerate_streak = 0;
        }

        // Apply the step to all basic variables.
        for (i, &a) in alpha.iter().enumerate() {
            let rate = sign * a;
            if rate != 0.0 {
                let v = self.basis[i];
                self.x[v] += rate * t;
            }
        }

        match leaving {
            None => {
                // Bound flip: entering variable runs to its other bound.
                self.status[j] = if increase {
                    self.x[j] = self.prob.hi[j];
                    VarStatus::Upper
                } else {
                    self.x[j] = self.prob.lo[j];
                    VarStatus::Lower
                };
            }
            Some((row, _, at_upper)) => {
                let piv = alpha[row];
                if piv.abs() < PIVOT_TOL {
                    return Err(SimplexNumerics);
                }
                // Entering variable takes its new value.
                self.x[j] = if increase {
                    self.prob.lo[j] + t
                } else {
                    self.prob.hi[j] - t
                };
                // Leaving variable snaps exactly to its blocking bound.
                let leave_var = self.basis[row];
                self.x[leave_var] = if at_upper {
                    self.prob.hi[leave_var]
                } else {
                    self.prob.lo[leave_var]
                };
                self.status[leave_var] = if at_upper {
                    VarStatus::Upper
                } else {
                    VarStatus::Lower
                };
                self.status[j] = VarStatus::Basic(row);
                self.basis[row] = j;
                // Update B⁻¹: eliminate the entering column.
                let m = self.m;
                let pivot_row: Vec<f64> = (0..m).map(|k| self.binv[row * m + k] / piv).collect();
                for i in 0..m {
                    if i == row {
                        continue;
                    }
                    let f = alpha[i];
                    if f == 0.0 {
                        continue;
                    }
                    for k in 0..m {
                        self.binv[i * m + k] -= f * pivot_row[k];
                    }
                }
                self.binv[row * m..(row + 1) * m].copy_from_slice(&pivot_row);
            }
        }
        Ok(true)
    }
}

/// Internal marker for numerical breakdown (triggers refactorize/retry).
struct SimplexNumerics;

/// Solves a standard-form LP.
///
/// The last `b.len()` columns must form an identity (the slack block built
/// by the caller); the routine starts from the all-slack basis.
pub(crate) fn solve_lp(
    prob: &LpProblem,
    max_iters: usize,
    deadline: Option<std::time::Instant>,
    cancel: Option<&crate::Cancellation>,
) -> LpOutcome {
    debug_assert!(prob.cols.len() >= prob.num_rows());
    let mut t = Tableau::new(prob);
    let phase1_costs: Vec<f64> = vec![0.0; prob.num_vars()];
    let mut iters = 0usize;

    // On large models a single degenerate LP can grind through the full
    // iteration limit for minutes — far past any caller deadline that is
    // only checked between branch-and-bound nodes. So the iteration
    // loops poll the caller's deadline and cancellation token as well
    // (every CANCEL_POLL_EVERY iterations; one iteration is O(m·n)
    // dense algebra, so the clock read is noise). A trip reports
    // `IterLimit`: the branch-and-bound already treats that as an
    // abandoned subtree and downgrades its proof claims.
    let cancelled = |iters: usize| {
        iters % CANCEL_POLL_EVERY == 0
            && (cancel.is_some_and(crate::Cancellation::is_expired)
                || deadline.is_some_and(|d| std::time::Instant::now() > d))
    };

    // Phase 1: drive out infeasibility. Costs are recomputed every
    // iteration because they depend on which basics are out of bounds.
    while t.infeasibility() > FEAS_TOL * (1.0 + t.m as f64) {
        if iters >= max_iters || cancelled(iters) {
            return LpOutcome::IterLimit;
        }
        iters += 1;
        if iters % REFACTOR_EVERY == 0 && t.refactorize() {
            t.recompute_basics();
        }
        let mut costs = phase1_costs.clone();
        for &v in &t.basis {
            costs[v] = t.phase1_cost(v);
        }
        match t.iterate(&costs, true) {
            Ok(true) => {}
            Ok(false) => {
                // Phase-1 optimal with residual infeasibility: no solution.
                return if t.infeasibility() > 1e-5 {
                    LpOutcome::Infeasible
                } else {
                    // Numerically tiny residual: accept and continue.
                    break;
                };
            }
            Err(SimplexNumerics) => {
                if !t.refactorize() {
                    return LpOutcome::IterLimit;
                }
                t.recompute_basics();
            }
        }
    }

    // Phase 2: optimize the true objective from the feasible basis.
    loop {
        if iters >= max_iters || cancelled(iters) {
            return LpOutcome::IterLimit;
        }
        iters += 1;
        if iters % REFACTOR_EVERY == 0 && t.refactorize() {
            t.recompute_basics();
        }
        match t.iterate(&prob.cost, false) {
            Ok(true) => {
                // A phase-2 step must never reintroduce infeasibility; if it
                // does (numerics), refactorize and clean up.
                if t.infeasibility() > 1e-5 {
                    if !t.refactorize() {
                        return LpOutcome::IterLimit;
                    }
                    t.recompute_basics();
                    if t.infeasibility() > 1e-5 {
                        // Fall back to a fresh phase-1 pass.
                        let outcome =
                            resume_phase1(&mut t, &mut iters, max_iters, deadline, cancel);
                        if let Some(out) = outcome {
                            return out;
                        }
                    }
                }
            }
            Ok(false) => break,
            Err(SimplexNumerics) => {
                if !t.refactorize() {
                    return LpOutcome::IterLimit;
                }
                t.recompute_basics();
            }
        }
    }

    let objective = prob.cost.iter().zip(&t.x).map(|(c, x)| c * x).sum::<f64>();
    LpOutcome::Optimal { x: t.x, objective }
}

fn resume_phase1(
    t: &mut Tableau,
    iters: &mut usize,
    max_iters: usize,
    deadline: Option<std::time::Instant>,
    cancel: Option<&crate::Cancellation>,
) -> Option<LpOutcome> {
    while t.infeasibility() > FEAS_TOL * (1.0 + t.m as f64) {
        let expired = *iters % CANCEL_POLL_EVERY == 0
            && (cancel.is_some_and(crate::Cancellation::is_expired)
                || deadline.is_some_and(|d| std::time::Instant::now() > d));
        if *iters >= max_iters || expired {
            return Some(LpOutcome::IterLimit);
        }
        *iters += 1;
        let mut costs = vec![0.0; t.prob.num_vars()];
        for &v in &t.basis {
            costs[v] = t.phase1_cost(v);
        }
        match t.iterate(&costs, true) {
            Ok(true) => {}
            Ok(false) => return Some(LpOutcome::Infeasible),
            Err(SimplexNumerics) => {
                if !t.refactorize() {
                    return Some(LpOutcome::IterLimit);
                }
                t.recompute_basics();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a standard-form problem from dense rows `a·x (sense) b` with
    /// auto-generated slack columns. sense: -1 ≤, 0 =, +1 ≥.
    fn build(cost: &[f64], bounds: &[(f64, f64)], rows: &[(&[f64], i8, f64)]) -> LpProblem {
        let n = cost.len();
        let m = rows.len();
        let mut cols: Vec<SparseCol> = vec![Vec::new(); n];
        let mut b = Vec::with_capacity(m);
        for (r, &(coeffs, _, rhs)) in rows.iter().enumerate() {
            assert_eq!(coeffs.len(), n);
            for (j, &a) in coeffs.iter().enumerate() {
                if a != 0.0 {
                    cols[j].push((r, a));
                }
            }
            b.push(rhs);
        }
        let mut lo: Vec<f64> = bounds.iter().map(|b| b.0).collect();
        let mut hi: Vec<f64> = bounds.iter().map(|b| b.1).collect();
        let mut full_cost = cost.to_vec();
        const BIG: f64 = 1e9;
        for (r, &(_, sense, _)) in rows.iter().enumerate() {
            cols.push(vec![(r, 1.0)]);
            full_cost.push(0.0);
            match sense {
                -1 => {
                    lo.push(0.0);
                    hi.push(BIG);
                }
                0 => {
                    lo.push(0.0);
                    hi.push(0.0);
                }
                1 => {
                    lo.push(-BIG);
                    hi.push(0.0);
                }
                _ => unreachable!(),
            }
        }
        LpProblem {
            cols,
            cost: full_cost,
            lo,
            hi,
            b,
        }
    }

    fn assert_optimal(prob: &LpProblem, expect_obj: f64) -> Vec<f64> {
        match solve_lp(prob, 10_000, None, None) {
            LpOutcome::Optimal { x, objective } => {
                assert!(
                    (objective - expect_obj).abs() < 1e-5,
                    "objective {objective} != {expect_obj}"
                );
                x
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn trivial_min_at_lower_bounds() {
        // min x + y, x,y in [1,5], no constraints beyond a loose row.
        let p = build(
            &[1.0, 1.0],
            &[(1.0, 5.0), (1.0, 5.0)],
            &[(&[1.0, 1.0], -1, 100.0)],
        );
        let x = assert_optimal(&p, 2.0);
        assert!((x[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn classic_max_lp() {
        // max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18  (Dantzig's example),
        // optimum 36 at (2, 6). As minimization of -obj.
        let p = build(
            &[-3.0, -5.0],
            &[(0.0, 100.0), (0.0, 100.0)],
            &[
                (&[1.0, 0.0], -1, 4.0),
                (&[0.0, 2.0], -1, 12.0),
                (&[3.0, 2.0], -1, 18.0),
            ],
        );
        let x = assert_optimal(&p, -36.0);
        assert!((x[0] - 2.0).abs() < 1e-6);
        assert!((x[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints_phase1() {
        // min 2x + 3y s.t. x + y = 10, x - y = 2 -> x=6, y=4, obj 24.
        let p = build(
            &[2.0, 3.0],
            &[(0.0, 100.0), (0.0, 100.0)],
            &[(&[1.0, 1.0], 0, 10.0), (&[1.0, -1.0], 0, 2.0)],
        );
        let x = assert_optimal(&p, 24.0);
        assert!((x[0] - 6.0).abs() < 1e-6);
        assert!((x[1] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn ge_constraints_need_phase1() {
        // min x + 2y s.t. x + y >= 4, y >= 1 -> x=3, y=1, obj 5.
        let p = build(
            &[1.0, 2.0],
            &[(0.0, 50.0), (0.0, 50.0)],
            &[(&[1.0, 1.0], 1, 4.0), (&[0.0, 1.0], 1, 1.0)],
        );
        let x = assert_optimal(&p, 5.0);
        assert!((x[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        // x <= 1 and x >= 3 with x in [0,10].
        let p = build(
            &[1.0],
            &[(0.0, 10.0)],
            &[(&[1.0], -1, 1.0), (&[1.0], 1, 3.0)],
        );
        assert!(matches!(
            solve_lp(&p, 10_000, None, None),
            LpOutcome::Infeasible
        ));
    }

    #[test]
    fn bounds_act_as_constraints() {
        // min -x with x in [0, 7] and a loose row: answer -7 (upper bound).
        let p = build(&[-1.0], &[(0.0, 7.0)], &[(&[1.0], -1, 100.0)]);
        let x = assert_optimal(&p, -7.0);
        assert!((x[0] - 7.0).abs() < 1e-6);
    }

    #[test]
    fn negative_lower_bounds() {
        // min x + y, x in [-5, 5], y in [-3, 3], x + y >= -6 -> obj -8...
        // x+y >= -6 binds: optimum -6 (e.g. x=-5, y=-1).
        let p = build(
            &[1.0, 1.0],
            &[(-5.0, 5.0), (-3.0, 3.0)],
            &[(&[1.0, 1.0], 1, -6.0)],
        );
        let x = assert_optimal(&p, -6.0);
        assert!(x[0] + x[1] >= -6.0 - 1e-6);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Multiple redundant constraints at the optimum.
        let p = build(
            &[-1.0, -1.0],
            &[(0.0, 10.0), (0.0, 10.0)],
            &[
                (&[1.0, 1.0], -1, 4.0),
                (&[1.0, 1.0], -1, 4.0),
                (&[2.0, 2.0], -1, 8.0),
                (&[1.0, 0.0], -1, 4.0),
                (&[0.0, 1.0], -1, 4.0),
            ],
        );
        assert_optimal(&p, -4.0);
    }

    #[test]
    fn fractional_lp_relaxation_of_knapsack() {
        // max 10a + 13b + 7c s.t. 5a + 6b + 4c <= 10, vars in [0,1].
        // LP optimum: b=1, a=4/5 -> 13 + 8 = 21.
        let p = build(
            &[-10.0, -13.0, -7.0],
            &[(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)],
            &[(&[5.0, 6.0, 4.0], -1, 10.0)],
        );
        assert_optimal(&p, -21.0);
    }

    #[test]
    fn fixed_variables_respected() {
        // y fixed at 2 by bounds; min x s.t. x + y >= 5 -> x=3.
        let p = build(
            &[1.0, 0.0],
            &[(0.0, 10.0), (2.0, 2.0)],
            &[(&[1.0, 1.0], 1, 5.0)],
        );
        let x = assert_optimal(&p, 3.0);
        assert!((x[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn klee_minty_cube_terminates() {
        // The classic worst case for Dantzig pricing in 3-D:
        // max 100 x1 + 10 x2 + x3
        // s.t. x1 <= 1; 20 x1 + x2 <= 100; 200 x1 + 20 x2 + x3 <= 10000.
        // Optimum 10000 at (0, 0, 10000).
        let p = build(
            &[-100.0, -10.0, -1.0],
            &[(0.0, 1e6), (0.0, 1e6), (0.0, 1e6)],
            &[
                (&[1.0, 0.0, 0.0], -1, 1.0),
                (&[20.0, 1.0, 0.0], -1, 100.0),
                (&[200.0, 20.0, 1.0], -1, 10_000.0),
            ],
        );
        let x = assert_optimal(&p, -10_000.0);
        assert!((x[2] - 10_000.0).abs() < 1e-4);
    }

    #[test]
    fn expired_deadline_and_cancellation_abort_the_lp_promptly() {
        // A perfectly solvable LP must still be abandoned as IterLimit
        // when the caller's wall-clock budget is already gone — the
        // regression was a single degenerate LP grinding through the
        // full iteration limit for minutes between deadline checks.
        let p = build(
            &[-3.0, -5.0],
            &[(0.0, 100.0), (0.0, 100.0)],
            &[
                (&[1.0, 0.0], -1, 4.0),
                (&[0.0, 2.0], -1, 12.0),
                (&[3.0, 2.0], -1, 18.0),
            ],
        );
        let past = std::time::Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(matches!(
            solve_lp(&p, 10_000, Some(past), None),
            LpOutcome::IterLimit
        ));
        let expired = crate::Cancellation::with_deadline(std::time::Duration::ZERO);
        assert!(matches!(
            solve_lp(&p, 10_000, None, Some(&expired)),
            LpOutcome::IterLimit
        ));
        // With live budgets the same LP still solves.
        let live = crate::Cancellation::with_deadline(std::time::Duration::from_secs(60));
        assert!(matches!(
            solve_lp(
                &p,
                10_000,
                Some(std::time::Instant::now() + std::time::Duration::from_secs(60)),
                Some(&live)
            ),
            LpOutcome::Optimal { .. }
        ));
    }

    #[test]
    fn highly_redundant_degenerate_cluster() {
        // Many constraints intersecting at the optimum; exercises the
        // Bland fallback anti-cycling path.
        let rows: Vec<(Vec<f64>, i8, f64)> = (0..12)
            .map(|k| {
                let a = 1.0 + (k % 3) as f64;
                let b = 1.0 + ((k + 1) % 3) as f64;
                (vec![a, b], -1i8, a + b) // all tight at (1, 1)
            })
            .collect();
        let rows_ref: Vec<(&[f64], i8, f64)> = rows
            .iter()
            .map(|(v, s, r)| (v.as_slice(), *s, *r))
            .collect();
        let p = build(&[-1.0, -1.0], &[(0.0, 10.0), (0.0, 10.0)], &rows_ref);
        let x = assert_optimal(&p, -2.0);
        assert!((x[0] - 1.0).abs() < 1e-6 && (x[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn transportation_like_equalities() {
        // Two supplies (3, 4), two demands (5, 2); min cost flows.
        // vars: f11,f12,f21,f22; cost 4,6,2,3.
        // supply rows: f11+f12=3, f21+f22=4; demand: f11+f21=5, f12+f22=2.
        // Optimum: f21=4 f11=1 f12=2 f22=0 -> 4*1+6*2+2*4 = 24?
        // alternatives: f11=1,f12=2,f21=4,f22=0 cost=4+12+8=24;
        // f11=3,f12=0,f21=2,f22=2 cost=12+4+6=22 -> optimum 22.
        let p = build(
            &[4.0, 6.0, 2.0, 3.0],
            &[(0.0, 10.0); 4],
            &[
                (&[1.0, 1.0, 0.0, 0.0], 0, 3.0),
                (&[0.0, 0.0, 1.0, 1.0], 0, 4.0),
                (&[1.0, 0.0, 1.0, 0.0], 0, 5.0),
                (&[0.0, 1.0, 0.0, 1.0], 0, 2.0),
            ],
        );
        assert_optimal(&p, 22.0);
    }
}
