#![allow(clippy::needless_range_loop)] // dense linear algebra reads clearer indexed

//! The dense predecessor of the sparse revised simplex — kept as the
//! reference baseline.
//!
//! Same bounded-variable two-phase primal algorithm as [`crate::simplex`],
//! but with the original data structures: an explicit dense `m×m` basis
//! inverse rewritten with elementary row operations on every pivot
//! (Gauss-Jordan refactorization every [`REFACTOR_EVERY`] iterations) and
//! Dantzig pricing (most-negative reduced cost). It always cold-starts from
//! the all-slack basis.
//!
//! Two jobs justify keeping it:
//!
//! - **cross-checking**: property tests solve random LPs through both
//!   engines and require identical optima, which pins the sparse core's
//!   algebra to an independently-written implementation;
//! - **benchmarking**: `ilp-bench` runs the paper rows through both engines
//!   so `BENCH_ilp.json` records the speedup of the sparse core rather
//!   than an unverifiable claim.
//!
//! It shares [`LpProblem`], [`LpOutcome`] and [`LpResult`] with the sparse
//! engine so branch-and-bound can dispatch on [`crate::LpEngine`] alone.

use crate::simplex::{Basis, LpOutcome, LpProblem, LpResult, VarStatus};

/// Feasibility / optimality tolerance on variable values.
const FEAS_TOL: f64 = 1e-7;
/// Reduced-cost tolerance.
const COST_TOL: f64 = 1e-7;
/// Minimum pivot magnitude.
const PIVOT_TOL: f64 = 1e-9;
/// Iterations between basis refactorizations.
const REFACTOR_EVERY: usize = 256;

/// How often the LP loops poll the caller's cancellation token.
const CANCEL_POLL_EVERY: usize = 64;
/// Degenerate iterations before switching to Bland's rule.
const BLAND_AFTER: usize = 64;

struct Tableau<'a> {
    prob: &'a LpProblem,
    m: usize,
    /// Dense row-major m×m basis inverse.
    binv: Vec<f64>,
    /// Variable occupying each basis row.
    basis: Vec<usize>,
    status: Vec<VarStatus>,
    /// Current value of every variable.
    x: Vec<f64>,
    degenerate_streak: usize,
    refactorizations: usize,
}

impl<'a> Tableau<'a> {
    /// Starts from the all-slack basis: the *last* `m` variables are assumed
    /// to form an identity block (guaranteed by the caller).
    fn new(prob: &'a LpProblem) -> Self {
        let m = prob.num_rows();
        let n = prob.num_vars();
        let mut status = vec![VarStatus::Lower; n];
        let mut basis = Vec::with_capacity(m);
        for (row, var) in (n - m..n).enumerate() {
            debug_assert!(
                {
                    let col: Vec<(usize, f64)> = prob.csc.col(var).collect();
                    col == vec![(row, 1.0)]
                },
                "slack block must be the identity"
            );
            status[var] = VarStatus::Basic(row);
            basis.push(var);
        }
        // Nonbasic structural vars start at the bound nearer to zero to keep
        // initial activities small.
        let mut x = vec![0.0; n];
        for j in 0..n {
            if matches!(status[j], VarStatus::Basic(_)) {
                continue;
            }
            x[j] = if prob.lo[j].abs() <= prob.hi[j].abs() {
                prob.lo[j]
            } else {
                status[j] = VarStatus::Upper;
                prob.hi[j]
            };
        }
        let mut binv = vec![0.0; m * m];
        for i in 0..m {
            binv[i * m + i] = 1.0;
        }
        let mut t = Tableau {
            prob,
            m,
            binv,
            basis,
            status,
            x,
            degenerate_streak: 0,
            refactorizations: 1,
        };
        t.recompute_basics();
        t
    }

    /// Recomputes basic variable values `x_B = B⁻¹ (b − N x_N)`.
    fn recompute_basics(&mut self) {
        let m = self.m;
        let mut rhs = self.prob.b.clone();
        for j in 0..self.prob.num_vars() {
            if matches!(self.status[j], VarStatus::Basic(_)) || self.x[j] == 0.0 {
                continue;
            }
            let xj = self.x[j];
            for (row, a) in self.prob.csc.col(j) {
                rhs[row] -= a * xj;
            }
        }
        for i in 0..m {
            let mut v = 0.0;
            for k in 0..m {
                v += self.binv[i * m + k] * rhs[k];
            }
            self.x[self.basis[i]] = v;
        }
    }

    /// Rebuilds the dense basis inverse by Gauss-Jordan elimination.
    /// Returns `false` when the basis matrix is numerically singular.
    fn refactorize(&mut self) -> bool {
        let m = self.m;
        // Assemble B column-by-column from the basis variables.
        let mut a = vec![0.0; m * m]; // B, row-major
        for (col_idx, &var) in self.basis.iter().enumerate() {
            for (row, coeff) in self.prob.csc.col(var) {
                a[row * m + col_idx] = coeff;
            }
        }
        let mut inv = vec![0.0; m * m];
        for i in 0..m {
            inv[i * m + i] = 1.0;
        }
        for col in 0..m {
            // Partial pivoting.
            let mut best = col;
            for r in col + 1..m {
                if a[r * m + col].abs() > a[best * m + col].abs() {
                    best = r;
                }
            }
            if a[best * m + col].abs() < PIVOT_TOL {
                return false;
            }
            if best != col {
                for k in 0..m {
                    a.swap(col * m + k, best * m + k);
                    inv.swap(col * m + k, best * m + k);
                }
            }
            let p = a[col * m + col];
            for k in 0..m {
                a[col * m + k] /= p;
                inv[col * m + k] /= p;
            }
            for r in 0..m {
                if r == col {
                    continue;
                }
                let f = a[r * m + col];
                if f == 0.0 {
                    continue;
                }
                for k in 0..m {
                    a[r * m + k] -= f * a[col * m + k];
                    inv[r * m + k] -= f * inv[col * m + k];
                }
            }
        }
        self.binv = inv;
        self.refactorizations += 1;
        true
    }

    /// Total bound violation over basic variables (phase-1 objective).
    fn infeasibility(&self) -> f64 {
        self.basis
            .iter()
            .map(|&v| {
                let x = self.x[v];
                (self.prob.lo[v] - x).max(0.0) + (x - self.prob.hi[v]).max(0.0)
            })
            .sum()
    }

    /// Phase-1 cost of a basic variable given its current value.
    fn phase1_cost(&self, var: usize) -> f64 {
        let x = self.x[var];
        if x > self.prob.hi[var] + FEAS_TOL {
            1.0
        } else if x < self.prob.lo[var] - FEAS_TOL {
            -1.0
        } else {
            0.0
        }
    }

    /// `y = c_B^T B⁻¹` for the given basic cost vector.
    fn duals(&self, cb: &[f64]) -> Vec<f64> {
        let m = self.m;
        let mut y = vec![0.0; m];
        for (i, &c) in cb.iter().enumerate() {
            if c == 0.0 {
                continue;
            }
            let row = &self.binv[i * m..(i + 1) * m];
            for (k, &b) in row.iter().enumerate() {
                y[k] += c * b;
            }
        }
        y
    }

    /// `α = B⁻¹ A_j`.
    fn ftran(&self, col: usize) -> Vec<f64> {
        let m = self.m;
        let mut alpha = vec![0.0; m];
        for (row, a) in self.prob.csc.col(col) {
            if a == 0.0 {
                continue;
            }
            for i in 0..m {
                alpha[i] += self.binv[i * m + row] * a;
            }
        }
        alpha
    }

    /// One simplex iteration for the given variable costs.
    /// `phase1` relaxes the ratio test so infeasible basics block only at
    /// the bound they currently violate.
    /// Returns `true` if a step was taken, `false` at (phase-)optimality.
    fn iterate(&mut self, costs: &[f64], phase1: bool) -> Result<bool, SimplexNumerics> {
        let bland = self.degenerate_streak >= BLAND_AFTER;
        let cb: Vec<f64> = self.basis.iter().map(|&v| costs[v]).collect();
        let y = self.duals(&cb);

        // Dantzig pricing: pick the most improving nonbasic column.
        let mut entering: Option<(usize, f64, bool)> = None; // (var, |d|, increase)
        for j in 0..self.prob.num_vars() {
            let dir = match self.status[j] {
                VarStatus::Basic(_) => continue,
                VarStatus::Lower => true,
                VarStatus::Upper => false,
            };
            if self.prob.hi[j] - self.prob.lo[j] < FEAS_TOL {
                continue; // fixed variable can never improve
            }
            let mut d = costs[j];
            for (row, a) in self.prob.csc.col(j) {
                d -= y[row] * a;
            }
            let improving = if dir { d < -COST_TOL } else { d > COST_TOL };
            if !improving {
                continue;
            }
            if bland {
                entering = Some((j, d.abs(), dir));
                break;
            }
            if entering.as_ref().is_none_or(|&(_, best, _)| d.abs() > best) {
                entering = Some((j, d.abs(), dir));
            }
        }
        let Some((j, _, increase)) = entering else {
            return Ok(false);
        };

        let alpha = self.ftran(j);
        // Basic variable i changes at rate `rate_i` per unit step t>=0.
        // increase: x_j := lo_j + t  => x_B -= alpha t   (rate -alpha)
        // decrease: x_j := hi_j - t  => x_B += alpha t   (rate +alpha)
        let sign = if increase { -1.0 } else { 1.0 };

        let mut t_limit = self.prob.hi[j] - self.prob.lo[j]; // bound flip
        let mut leaving: Option<(usize, f64, bool)> = None; // (row, |pivot|, at_upper)
        for (i, &a) in alpha.iter().enumerate() {
            let rate = sign * a;
            if rate.abs() < PIVOT_TOL {
                continue;
            }
            let v = self.basis[i];
            let xv = self.x[v];
            let (limit, at_upper) = if rate > 0.0 {
                // Variable increases: blocks at its upper bound. In phase 1 a
                // basic below its lower bound blocks at the *lower* bound
                // (where it becomes feasible).
                if phase1 && xv < self.prob.lo[v] - FEAS_TOL {
                    ((self.prob.lo[v] - xv) / rate, false)
                } else {
                    ((self.prob.hi[v] - xv) / rate, true)
                }
            } else {
                // Variable decreases: blocks at its lower bound; in phase 1 a
                // basic above its upper bound blocks at the upper bound.
                if phase1 && xv > self.prob.hi[v] + FEAS_TOL {
                    ((self.prob.hi[v] - xv) / rate, true)
                } else {
                    ((self.prob.lo[v] - xv) / rate, false)
                }
            };
            let limit = limit.max(0.0);
            let replace = match leaving {
                _ if limit > t_limit + FEAS_TOL => false,
                None => limit < t_limit - FEAS_TOL || limit <= t_limit,
                Some((row, best_piv, _)) => {
                    if limit < t_limit - FEAS_TOL {
                        true
                    } else if bland {
                        self.basis[i] < self.basis[row]
                    } else {
                        rate.abs() > best_piv
                    }
                }
            };
            if replace {
                if limit < t_limit {
                    t_limit = limit;
                }
                leaving = Some((i, rate.abs(), at_upper));
            }
        }

        let t = t_limit.max(0.0);
        if t < FEAS_TOL {
            self.degenerate_streak += 1;
            if self.degenerate_streak > BLAND_AFTER * 64 {
                return Err(SimplexNumerics);
            }
        } else {
            self.degenerate_streak = 0;
        }

        // Apply the step to all basic variables.
        for (i, &a) in alpha.iter().enumerate() {
            let rate = sign * a;
            if rate != 0.0 {
                let v = self.basis[i];
                self.x[v] += rate * t;
            }
        }

        match leaving {
            None => {
                // Bound flip: entering variable runs to its other bound.
                self.status[j] = if increase {
                    self.x[j] = self.prob.hi[j];
                    VarStatus::Upper
                } else {
                    self.x[j] = self.prob.lo[j];
                    VarStatus::Lower
                };
            }
            Some((row, _, at_upper)) => {
                let piv = alpha[row];
                if piv.abs() < PIVOT_TOL {
                    return Err(SimplexNumerics);
                }
                // Entering variable takes its new value.
                self.x[j] = if increase {
                    self.prob.lo[j] + t
                } else {
                    self.prob.hi[j] - t
                };
                // Leaving variable snaps exactly to its blocking bound.
                let leave_var = self.basis[row];
                self.x[leave_var] = if at_upper {
                    self.prob.hi[leave_var]
                } else {
                    self.prob.lo[leave_var]
                };
                self.status[leave_var] = if at_upper {
                    VarStatus::Upper
                } else {
                    VarStatus::Lower
                };
                self.status[j] = VarStatus::Basic(row);
                self.basis[row] = j;
                // Update B⁻¹: eliminate the entering column.
                let m = self.m;
                let pivot_row: Vec<f64> = (0..m).map(|k| self.binv[row * m + k] / piv).collect();
                for i in 0..m {
                    if i == row {
                        continue;
                    }
                    let f = alpha[i];
                    if f == 0.0 {
                        continue;
                    }
                    for k in 0..m {
                        self.binv[i * m + k] -= f * pivot_row[k];
                    }
                }
                self.binv[row * m..(row + 1) * m].copy_from_slice(&pivot_row);
            }
        }
        Ok(true)
    }
}

/// Internal marker for numerical breakdown (triggers refactorize/retry).
struct SimplexNumerics;

/// Solves a standard-form LP with the dense baseline engine (always a
/// cold start from the all-slack basis; any warm basis is ignored by the
/// dispatching caller).
pub(crate) fn solve_lp_dense(
    prob: &LpProblem,
    max_iters: usize,
    deadline: Option<std::time::Instant>,
    cancel: Option<&crate::Cancellation>,
) -> LpResult {
    debug_assert!(prob.num_vars() >= prob.num_rows());
    let mut t = Tableau::new(prob);
    let mut iters = 0usize;

    let cancelled = |iters: usize| {
        iters % CANCEL_POLL_EVERY == 0
            && (cancel.is_some_and(crate::Cancellation::is_expired)
                || deadline.is_some_and(|d| std::time::Instant::now() > d))
    };
    macro_rules! done {
        ($outcome:expr) => {
            return LpResult {
                outcome: $outcome,
                iterations: iters,
                refactorizations: t.refactorizations,
            }
        };
    }

    // Phase 1: drive out infeasibility. Costs are recomputed every
    // iteration because they depend on which basics are out of bounds.
    while t.infeasibility() > FEAS_TOL * (1.0 + t.m as f64) {
        if iters >= max_iters {
            done!(LpOutcome::IterLimit);
        }
        if cancelled(iters) {
            done!(LpOutcome::Cancelled);
        }
        iters += 1;
        if iters % REFACTOR_EVERY == 0 && t.refactorize() {
            t.recompute_basics();
        }
        let mut costs = vec![0.0; prob.num_vars()];
        for &v in &t.basis {
            costs[v] = t.phase1_cost(v);
        }
        match t.iterate(&costs, true) {
            Ok(true) => {}
            Ok(false) => {
                // Phase-1 optimal with residual infeasibility: no solution.
                if t.infeasibility() > 1e-5 {
                    done!(LpOutcome::Infeasible);
                }
                // Numerically tiny residual: accept and continue.
                break;
            }
            Err(SimplexNumerics) => {
                if !t.refactorize() {
                    done!(LpOutcome::Numerics);
                }
                t.recompute_basics();
            }
        }
    }

    // Phase 2: optimize the true objective from the feasible basis.
    loop {
        if iters >= max_iters {
            done!(LpOutcome::IterLimit);
        }
        if cancelled(iters) {
            done!(LpOutcome::Cancelled);
        }
        iters += 1;
        if iters % REFACTOR_EVERY == 0 && t.refactorize() {
            t.recompute_basics();
        }
        match t.iterate(&prob.cost, false) {
            Ok(true) => {
                // A phase-2 step must never reintroduce infeasibility; if it
                // does (numerics), refactorize and clean up.
                if t.infeasibility() > 1e-5 {
                    if !t.refactorize() {
                        done!(LpOutcome::Numerics);
                    }
                    t.recompute_basics();
                    if t.infeasibility() > 1e-5 {
                        // Fall back to a fresh phase-1 pass.
                        if let Some(out) =
                            resume_phase1(&mut t, &mut iters, max_iters, deadline, cancel)
                        {
                            done!(out);
                        }
                    }
                }
            }
            Ok(false) => break,
            Err(SimplexNumerics) => {
                if !t.refactorize() {
                    done!(LpOutcome::Numerics);
                }
                t.recompute_basics();
            }
        }
    }

    let objective = prob.cost.iter().zip(&t.x).map(|(c, x)| c * x).sum::<f64>();
    let basis = Basis {
        status: t.status.clone(),
        basis: t.basis.clone(),
    };
    done!(LpOutcome::Optimal {
        x: t.x,
        objective,
        basis,
    });
}

fn resume_phase1(
    t: &mut Tableau,
    iters: &mut usize,
    max_iters: usize,
    deadline: Option<std::time::Instant>,
    cancel: Option<&crate::Cancellation>,
) -> Option<LpOutcome> {
    while t.infeasibility() > FEAS_TOL * (1.0 + t.m as f64) {
        if *iters >= max_iters {
            return Some(LpOutcome::IterLimit);
        }
        let expired = *iters % CANCEL_POLL_EVERY == 0
            && (cancel.is_some_and(crate::Cancellation::is_expired)
                || deadline.is_some_and(|d| std::time::Instant::now() > d));
        if expired {
            return Some(LpOutcome::Cancelled);
        }
        *iters += 1;
        let mut costs = vec![0.0; t.prob.num_vars()];
        for &v in &t.basis {
            costs[v] = t.phase1_cost(v);
        }
        match t.iterate(&costs, true) {
            Ok(true) => {}
            Ok(false) => return Some(LpOutcome::Infeasible),
            Err(SimplexNumerics) => {
                if !t.refactorize() {
                    return Some(LpOutcome::Numerics);
                }
                t.recompute_basics();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::tests::build;

    fn assert_optimal(prob: &LpProblem, expect_obj: f64) -> Vec<f64> {
        match solve_lp_dense(prob, 10_000, None, None).outcome {
            LpOutcome::Optimal { x, objective, .. } => {
                assert!(
                    (objective - expect_obj).abs() < 1e-5,
                    "objective {objective} != {expect_obj}"
                );
                x
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn dense_classic_max_lp() {
        let p = build(
            &[-3.0, -5.0],
            &[(0.0, 100.0), (0.0, 100.0)],
            &[
                (&[1.0, 0.0], -1, 4.0),
                (&[0.0, 2.0], -1, 12.0),
                (&[3.0, 2.0], -1, 18.0),
            ],
        );
        let x = assert_optimal(&p, -36.0);
        assert!((x[0] - 2.0).abs() < 1e-6);
        assert!((x[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn dense_equality_constraints_phase1() {
        let p = build(
            &[2.0, 3.0],
            &[(0.0, 100.0), (0.0, 100.0)],
            &[(&[1.0, 1.0], 0, 10.0), (&[1.0, -1.0], 0, 2.0)],
        );
        let x = assert_optimal(&p, 24.0);
        assert!((x[0] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn dense_infeasible_detected() {
        let p = build(
            &[1.0],
            &[(0.0, 10.0)],
            &[(&[1.0], -1, 1.0), (&[1.0], 1, 3.0)],
        );
        assert!(matches!(
            solve_lp_dense(&p, 10_000, None, None).outcome,
            LpOutcome::Infeasible
        ));
    }

    #[test]
    fn dense_deadline_trips_as_cancelled() {
        let p = build(
            &[-3.0, -5.0],
            &[(0.0, 100.0), (0.0, 100.0)],
            &[
                (&[1.0, 0.0], -1, 4.0),
                (&[0.0, 2.0], -1, 12.0),
                (&[3.0, 2.0], -1, 18.0),
            ],
        );
        let past = std::time::Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(matches!(
            solve_lp_dense(&p, 10_000, Some(past), None).outcome,
            LpOutcome::Cancelled
        ));
    }

    #[test]
    fn dense_optimum_matches_sparse_on_transportation() {
        let p = build(
            &[4.0, 6.0, 2.0, 3.0],
            &[(0.0, 10.0); 4],
            &[
                (&[1.0, 1.0, 0.0, 0.0], 0, 3.0),
                (&[0.0, 0.0, 1.0, 1.0], 0, 4.0),
                (&[1.0, 0.0, 1.0, 0.0], 0, 5.0),
                (&[0.0, 1.0, 0.0, 1.0], 0, 2.0),
            ],
        );
        assert_optimal(&p, 22.0);
        let sparse = crate::simplex::solve_lp(&p, 10_000, None, None, None);
        let LpOutcome::Optimal { objective, .. } = sparse.outcome else {
            panic!("sparse engine must agree");
        };
        assert!((objective - 22.0).abs() < 1e-5);
    }
}
