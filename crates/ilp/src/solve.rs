//! LP relaxation plumbing and the branch-and-bound driver.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::cancel::Cancellation;
use crate::model::{Cmp, Model, Sense, VarKind};
use crate::simplex::{solve_lp, Basis, LpOutcome, LpProblem, SparseCol};

/// Which simplex engine solves the LP relaxations.
///
/// The sparse revised simplex is the production engine; the dense
/// predecessor is retained as an independently-written baseline for
/// cross-checks and for the `ilp-bench` speedup measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LpEngine {
    /// CSC storage, LU + eta-file basis updates, devex pricing, warm
    /// starts across branch-and-bound nodes.
    #[default]
    Sparse,
    /// Dense m×m basis inverse, Dantzig pricing, cold start per node.
    Dense,
}

/// Knobs for [`Model::solve`].
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use troy_ilp::SolveParams;
///
/// let params = SolveParams {
///     time_limit: Some(Duration::from_secs(5)),
///     ..SolveParams::default()
/// };
/// assert!(params.node_limit > 0);
/// ```
#[derive(Debug, Clone)]
pub struct SolveParams {
    /// Wall-clock budget; on expiry the best incumbent is returned with
    /// [`SolveStatus::Feasible`]. `None` = unlimited.
    pub time_limit: Option<Duration>,
    /// Maximum branch-and-bound nodes to explore.
    pub node_limit: usize,
    /// Per-LP simplex iteration cap.
    pub lp_iter_limit: usize,
    /// Absolute integrality tolerance when rounding LP values.
    pub int_tol: f64,
    /// Optional known-feasible assignment used as the initial incumbent
    /// (a MIP start); must be feasible for the model — integrality of the
    /// integer variables included — or it is ignored.
    pub mip_start: Option<Vec<f64>>,
    /// If `true`, objective coefficients are assumed integral for all
    /// integer variables and bounds are rounded up when pruning.
    pub integral_objective: bool,
    /// Optional branching priority per variable (higher branches first);
    /// variables beyond the vector's length default to priority 0. Among
    /// the fractional integer variables of the highest priority present,
    /// the most fractional one is chosen.
    pub branch_priority: Vec<i32>,
    /// Cooperative cancellation token polled once per branch-and-bound
    /// node. Expiry behaves exactly like the time limit: the best
    /// incumbent (if any) is returned as [`SolveStatus::Feasible`].
    pub cancel: Cancellation,
    /// Which simplex engine solves the node LPs.
    pub lp_engine: LpEngine,
    /// Whether child nodes warm-start from the parent's optimal basis
    /// (sparse engine only; the dense baseline always cold-starts).
    pub warm_start: bool,
}

impl Default for SolveParams {
    fn default() -> Self {
        SolveParams {
            time_limit: Some(Duration::from_secs(30)),
            node_limit: 2_000_000,
            lp_iter_limit: 50_000,
            int_tol: 1e-6,
            mip_start: None,
            integral_objective: false,
            branch_priority: Vec::new(),
            cancel: Cancellation::new(),
            lp_engine: LpEngine::Sparse,
            warm_start: true,
        }
    }
}

/// Termination status of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// Proven optimal solution.
    Optimal,
    /// A feasible solution was found but optimality was not proven before a
    /// limit was hit (the paper marks such rows `*`).
    Feasible,
    /// Proven infeasible.
    Infeasible,
    /// No feasible solution found before a limit was hit (inconclusive).
    Unknown,
}

/// Outcome of [`Model::solve`]: status, best solution (if any), statistics.
#[derive(Debug, Clone)]
pub struct SolveResult {
    status: SolveStatus,
    values: Option<Vec<f64>>,
    objective: Option<f64>,
    /// Best proven bound on the objective (lower bound when minimizing).
    bound: Option<f64>,
    nodes: usize,
    elapsed: Duration,
    lp_iterations: usize,
    refactorizations: usize,
    lp_failures: bool,
}

impl SolveResult {
    /// Termination status.
    #[must_use]
    pub fn status(&self) -> SolveStatus {
        self.status
    }

    /// Best objective value found, in the model's own sense.
    #[must_use]
    pub fn objective(&self) -> Option<f64> {
        self.objective
    }

    /// Best proven bound (lower bound when minimizing, upper when
    /// maximizing); equals the objective at optimality.
    #[must_use]
    pub fn bound(&self) -> Option<f64> {
        self.bound
    }

    /// Branch-and-bound nodes explored.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Wall-clock time spent.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// Total simplex iterations across every node LP.
    #[must_use]
    pub fn lp_iterations(&self) -> usize {
        self.lp_iterations
    }

    /// Total basis (re)factorizations across every node LP.
    #[must_use]
    pub fn refactorizations(&self) -> usize {
        self.refactorizations
    }

    /// Whether any node LP failed outright (iteration exhaustion or
    /// numerical breakdown — *not* deadline/cancel trips), voiding proof
    /// claims for the search.
    #[must_use]
    pub fn lp_failures(&self) -> bool {
        self.lp_failures
    }

    /// The variable assignment, if a feasible solution was found.
    #[must_use]
    pub fn values(&self) -> Option<&[f64]> {
        self.values.as_deref()
    }

    /// Converts into a [`Solution`] when one exists.
    #[must_use]
    pub fn into_solution(self) -> Option<Solution> {
        match (self.values, self.objective) {
            (Some(values), Some(objective)) => Some(Solution {
                values,
                objective,
                proven_optimal: self.status == SolveStatus::Optimal,
            }),
            _ => None,
        }
    }
}

/// A feasible (possibly optimal) assignment.
#[derive(Debug, Clone)]
pub struct Solution {
    values: Vec<f64>,
    objective: f64,
    proven_optimal: bool,
}

impl Solution {
    /// Value of one variable.
    #[must_use]
    pub fn value(&self, var: crate::model::VarId) -> f64 {
        self.values[var.index()]
    }

    /// All variable values, indexed by [`crate::model::VarId::index`].
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Objective value in the model's sense.
    #[must_use]
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Whether optimality was proven.
    #[must_use]
    pub fn proven_optimal(&self) -> bool {
        self.proven_optimal
    }
}

/// Big finite bound used for slack variables of inequality rows.
const SLACK_BIG: f64 = 1e12;

struct Relaxation {
    /// Standard-form problem; structural columns first, then slacks.
    prob: LpProblem,
    n_structural: usize,
    /// Minimization objective sign (+1 for Minimize, -1 for Maximize).
    obj_sign: f64,
}

fn build_relaxation(model: &Model) -> Relaxation {
    let n = model.num_vars();
    let m = model.num_constraints();
    let mut cols: Vec<SparseCol> = vec![Vec::new(); n];
    let mut b = Vec::with_capacity(m);
    for (r, c) in model.constraints().iter().enumerate() {
        for &(v, a) in c.terms() {
            cols[v.index()].push((r, a));
        }
        b.push(c.rhs());
    }
    let obj_sign = match model.sense() {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    let mut cost = vec![0.0; n];
    for &(v, c) in model.objective() {
        cost[v.index()] = obj_sign * c;
    }
    let mut lo: Vec<f64> = (0..n)
        .map(|i| model.variable(crate::model::VarId(i as u32)).lower())
        .collect();
    let mut hi: Vec<f64> = (0..n)
        .map(|i| model.variable(crate::model::VarId(i as u32)).upper())
        .collect();
    for (r, c) in model.constraints().iter().enumerate() {
        cols.push(vec![(r, 1.0)]);
        cost.push(0.0);
        match c.sense() {
            Cmp::Le => {
                lo.push(0.0);
                hi.push(SLACK_BIG);
            }
            Cmp::Eq => {
                lo.push(0.0);
                hi.push(0.0);
            }
            Cmp::Ge => {
                lo.push(-SLACK_BIG);
                hi.push(0.0);
            }
        }
    }
    Relaxation {
        prob: LpProblem::from_cols(&cols, cost, lo, hi, b),
        n_structural: n,
        obj_sign,
    }
}

#[derive(Debug, Clone)]
struct Node {
    /// (var index, lower, upper) overrides accumulated on this path.
    overrides: Vec<(usize, f64, f64)>,
    /// Parent LP bound (minimization sense) for best-first ordering.
    bound: f64,
    /// Parent's optimal basis for warm-starting this node's LP; shared
    /// between siblings (the basis matrix is bound-independent, so the
    /// parent's factorization stays valid under the child's overrides).
    basis: Option<Arc<Basis>>,
}

impl Model {
    /// Solves the model by LP-based branch & bound.
    ///
    /// Returns the best solution found together with its proof status; see
    /// [`SolveStatus`]. Infeasibility and optimality are proven exactly
    /// (up to tolerances); hitting a limit downgrades the status to
    /// [`SolveStatus::Feasible`] or [`SolveStatus::Unknown`] — a truncated
    /// search never reports [`SolveStatus::Infeasible`] or
    /// [`SolveStatus::Optimal`].
    ///
    /// # Examples
    ///
    /// ```
    /// use troy_ilp::{LinExpr, Model, SolveParams, SolveStatus};
    ///
    /// // min x + y  s.t.  x + y >= 3, binaries -> infeasible.
    /// let mut m = Model::minimize();
    /// let x = m.binary("x");
    /// let y = m.binary("y");
    /// m.add_ge("c", LinExpr::sum([x, y]), 3.0);
    /// assert_eq!(m.solve(&SolveParams::default()).status(), SolveStatus::Infeasible);
    /// ```
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn solve(&self, params: &SolveParams) -> SolveResult {
        let start = Instant::now();
        let relax = build_relaxation(self);
        let int_vars: Vec<usize> = (0..self.num_vars())
            .filter(|&i| self.variable(crate::model::VarId(i as u32)).kind() == VarKind::Integer)
            .collect();

        // Incumbent from the MIP start, if it checks out — which requires
        // integrality of the integer variables on top of linear
        // feasibility, or a fractional warm start would seed a bogus
        // pruning bound.
        let mut incumbent: Option<(Vec<f64>, f64)> = params.mip_start.as_ref().and_then(|v| {
            let integral = v.len() == self.num_vars()
                && int_vars
                    .iter()
                    .all(|&i| (v[i] - v[i].round()).abs() <= params.int_tol);
            if integral && self.check_feasible(v, 1e-5).is_none() {
                Some((
                    v.clone(),
                    relax.obj_sign * (self.objective_value(v) - self.objective_offset()),
                ))
            } else {
                None
            }
        });

        // The wall-clock bound is threaded into every LP solve as well:
        // between-node checks alone let one degenerate LP overrun the
        // limit by minutes on large models.
        let lp_deadline = params.time_limit.map(|l| start + l);
        let mut stack: Vec<Node> = vec![Node {
            overrides: Vec::new(),
            bound: f64::NEG_INFINITY,
            basis: None,
        }];
        let mut nodes = 0usize;
        let mut lp_iterations = 0usize;
        let mut refactorizations = 0usize;
        let mut limit_hit = false;
        let mut lp_failures = false; // IterLimit/Numerics abandoned a subtree
        let mut infeasible_proven = true; // stays true only if every leaf was pruned exactly

        // Node bounds are applied to one shared problem and reverted before
        // the next node, instead of cloning the whole LpProblem per node.
        let mut prob = relax.prob.clone();
        let root_lo = relax.prob.lo.clone();
        let root_hi = relax.prob.hi.clone();
        let mut touched: Vec<usize> = Vec::new();

        loop {
            // Limits are checked *before* popping: a node popped and then
            // abandoned on break would silently vanish from the open set
            // and tighten the reported bound past what was proven.
            if let Some(limit) = params.time_limit {
                if start.elapsed() > limit {
                    limit_hit = true;
                    break;
                }
            }
            if params.cancel.is_expired() {
                limit_hit = true;
                break;
            }
            if nodes >= params.node_limit {
                limit_hit = true;
                break;
            }
            let Some(node) = stack.pop() else { break };
            // Prune against the incumbent before paying for the LP.
            if let Some((_, inc_obj)) = &incumbent {
                if prune(node.bound, *inc_obj, params) {
                    continue;
                }
            }
            nodes += 1;

            // Apply this node's bound overrides in place.
            for &v in &touched {
                prob.lo[v] = root_lo[v];
                prob.hi[v] = root_hi[v];
            }
            touched.clear();
            for &(v, lo, hi) in &node.overrides {
                prob.lo[v] = lo;
                prob.hi[v] = hi;
                touched.push(v);
            }

            let warm = if params.warm_start {
                node.basis.as_deref()
            } else {
                None
            };
            let lp = match params.lp_engine {
                LpEngine::Sparse => solve_lp(
                    &prob,
                    params.lp_iter_limit,
                    lp_deadline,
                    Some(&params.cancel),
                    warm,
                ),
                LpEngine::Dense => crate::dense::solve_lp_dense(
                    &prob,
                    params.lp_iter_limit,
                    lp_deadline,
                    Some(&params.cancel),
                ),
            };
            lp_iterations += lp.iterations;
            refactorizations += lp.refactorizations;

            match lp.outcome {
                LpOutcome::Infeasible => {}
                LpOutcome::Cancelled => {
                    // Clean budget stop, exactly like the between-node
                    // deadline check: the node goes back to the open set
                    // (its bound is still unproven territory) and the
                    // search winds down without poisoning proof claims.
                    stack.push(node);
                    limit_hit = true;
                    break;
                }
                LpOutcome::IterLimit | LpOutcome::Numerics => {
                    // Cannot bound or explore this subtree: give up on it
                    // and downgrade every proof-dependent claim.
                    limit_hit = true;
                    infeasible_proven = false;
                    lp_failures = true;
                }
                LpOutcome::Optimal {
                    x,
                    objective,
                    basis,
                } => {
                    if let Some((_, inc_obj)) = &incumbent {
                        if prune(objective, *inc_obj, params) {
                            continue;
                        }
                    }
                    // Find the most fractional integer variable within the
                    // highest branching-priority class that has one.
                    let mut branch_var: Option<(usize, f64)> = None;
                    let mut best_prio = i32::MIN;
                    for &v in &int_vars {
                        let frac = (x[v] - x[v].round()).abs();
                        if frac <= params.int_tol {
                            continue;
                        }
                        let prio = params.branch_priority.get(v).copied().unwrap_or(0);
                        let better = prio > best_prio
                            || (prio == best_prio && branch_var.is_none_or(|(_, bf)| frac > bf));
                        if better {
                            branch_var = Some((v, frac));
                            best_prio = prio;
                        }
                    }
                    match branch_var {
                        None => {
                            // Integral: candidate incumbent. Snap and verify.
                            let mut vals: Vec<f64> = x[..relax.n_structural].to_vec();
                            for &v in &int_vars {
                                vals[v] = vals[v].round();
                            }
                            if self.check_feasible(&vals, 1e-5).is_none() {
                                let obj = relax.obj_sign
                                    * (self.objective_value(&vals) - self.objective_offset());
                                if incumbent.as_ref().is_none_or(|(_, best)| obj < *best) {
                                    incumbent = Some((vals, obj));
                                }
                            }
                        }
                        Some((v, _)) => {
                            let floor = x[v].floor();
                            let lo = prob.lo[v];
                            let hi = prob.hi[v];
                            // Both children inherit this node's optimal
                            // basis: the basis matrix does not depend on
                            // bounds, so the child LP re-solves in a few
                            // dual-infeasibility-repair pivots instead of
                            // from the all-slack basis.
                            let parent_basis = Some(Arc::new(basis));
                            // Depth-first: push the "closer" child last so it
                            // pops first (dive toward the LP value).
                            let mut down = node.overrides.clone();
                            down.push((v, lo, floor));
                            let mut up = node.overrides.clone();
                            up.push((v, floor + 1.0, hi));
                            let frac = x[v] - floor;
                            let (first, second) = if frac > 0.5 { (down, up) } else { (up, down) };
                            stack.push(Node {
                                overrides: first,
                                bound: objective,
                                basis: parent_basis.clone(),
                            });
                            stack.push(Node {
                                overrides: second,
                                bound: objective,
                                basis: parent_basis,
                            });
                        }
                    }
                }
            }
        }

        // Proven bound on the optimum, in minimization space: the optimum
        // lies either in an open subtree (bounded below by its recorded LP
        // bound) or equals the incumbent. Abandoned subtrees (LP failures)
        // void the proof.
        let open_bound = stack.iter().map(|n| n.bound).fold(f64::INFINITY, f64::min);
        let min_bound = |inc: Option<f64>| -> Option<f64> {
            if lp_failures {
                return None;
            }
            match (stack.is_empty(), inc) {
                (true, Some(obj)) => Some(obj),
                (false, Some(obj)) => Some(obj.min(open_bound)),
                (true, None) => None, // infeasible: no bound to speak of
                (false, None) => open_bound.is_finite().then_some(open_bound),
            }
        };

        // A truncated search (limit trip, or nodes left open for any other
        // reason) proves nothing terminal.
        let truncated = limit_hit || !stack.is_empty();
        let elapsed = start.elapsed();
        match incumbent {
            Some((vals, min_obj)) => {
                let objective = self.objective_offset() + relax.obj_sign * min_obj;
                let bound =
                    min_bound(Some(min_obj)).map(|b| self.objective_offset() + relax.obj_sign * b);
                SolveResult {
                    status: if truncated {
                        SolveStatus::Feasible
                    } else {
                        SolveStatus::Optimal
                    },
                    bound,
                    values: Some(vals),
                    objective: Some(objective),
                    nodes,
                    elapsed,
                    lp_iterations,
                    refactorizations,
                    lp_failures,
                }
            }
            None => SolveResult {
                status: if !truncated && infeasible_proven {
                    SolveStatus::Infeasible
                } else {
                    SolveStatus::Unknown
                },
                values: None,
                objective: None,
                bound: min_bound(None).map(|b| self.objective_offset() + relax.obj_sign * b),
                nodes,
                elapsed,
                lp_iterations,
                refactorizations,
                lp_failures,
            },
        }
    }
}

/// Should a node with LP bound `bound` (minimization) be pruned against the
/// incumbent objective `inc` (minimization)?
fn prune(bound: f64, inc: f64, params: &SolveParams) -> bool {
    let effective = if params.integral_objective {
        // All integer costs: any better solution is at least 1 cheaper...
        // conservatively, bound can be rounded up to the next integer.
        (bound - 1e-6).ceil()
    } else {
        bound
    };
    effective >= inc - 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, Model};

    fn solve(m: &Model) -> SolveResult {
        m.solve(&SolveParams::default())
    }

    #[test]
    fn knapsack_binary() {
        // max 10a+13b+7c s.t. 5a+6b+4c<=10 -> {b,c} = 20.
        let mut m = Model::maximize();
        let a = m.binary("a");
        let b = m.binary("b");
        let c = m.binary("c");
        m.set_objective(LinExpr::term(10.0, a) + LinExpr::term(13.0, b) + LinExpr::term(7.0, c));
        m.add_le(
            "cap",
            LinExpr::term(5.0, a) + LinExpr::term(6.0, b) + LinExpr::term(4.0, c),
            10.0,
        );
        let r = solve(&m);
        assert_eq!(r.status(), SolveStatus::Optimal);
        let s = r.into_solution().unwrap();
        assert_eq!(s.objective().round() as i64, 20);
        assert_eq!(s.value(b).round() as i64, 1);
        assert_eq!(s.value(c).round() as i64, 1);
        assert_eq!(s.value(a).round() as i64, 0);
    }

    #[test]
    fn assignment_problem() {
        // 3x3 assignment, costs; optimal = 1+2+1 = 4 on the permutation
        // (0->1), (1->0)... verify by brute force below.
        let costs = [[4.0, 1.0, 3.0], [2.0, 0.0, 5.0], [3.0, 2.0, 1.0]];
        let mut m = Model::minimize();
        let mut x = Vec::new();
        for i in 0..3 {
            let mut row = Vec::new();
            for j in 0..3 {
                row.push(m.binary(format!("x{i}{j}")));
            }
            x.push(row);
        }
        let mut obj = LinExpr::new();
        for i in 0..3 {
            for j in 0..3 {
                obj.add_term(costs[i][j], x[i][j]);
            }
        }
        m.set_objective(obj);
        #[allow(clippy::needless_range_loop)] // row/column duality reads clearer indexed
        for i in 0..3 {
            m.add_eq(format!("row{i}"), LinExpr::sum(x[i].clone()), 1.0);
            m.add_eq(
                format!("col{i}"),
                LinExpr::sum((0..3).map(|r| x[r][i])),
                1.0,
            );
        }
        // Brute-force optimum over all 6 permutations.
        let perms = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        let best = perms
            .iter()
            .map(|p| (0..3).map(|i| costs[i][p[i]]).sum::<f64>())
            .fold(f64::INFINITY, f64::min);
        let r = solve(&m);
        assert_eq!(r.status(), SolveStatus::Optimal);
        assert!((r.objective().unwrap() - best).abs() < 1e-6);
    }

    #[test]
    fn set_cover() {
        // Universe {0..4}; sets: A={0,1,2} cost 3, B={2,3} cost 2,
        // C={3,4} cost 2, D={0,4} cost 2, E={1,3} cost 1.
        // Optimal: A+C = 5 or D+E+{2?}... A={0,1,2}, C={3,4} -> cost 5.
        // D+E covers {0,1,3,4}, + B covers 2: cost 5. Check = 5.
        let mut m = Model::minimize();
        let sets: Vec<(Vec<usize>, f64)> = vec![
            (vec![0, 1, 2], 3.0),
            (vec![2, 3], 2.0),
            (vec![3, 4], 2.0),
            (vec![0, 4], 2.0),
            (vec![1, 3], 1.0),
        ];
        let vars: Vec<_> = (0..sets.len()).map(|i| m.binary(format!("s{i}"))).collect();
        let mut obj = LinExpr::new();
        for (v, (_, c)) in vars.iter().zip(&sets) {
            obj.add_term(*c, *v);
        }
        m.set_objective(obj);
        for e in 0..5 {
            let covering = sets
                .iter()
                .enumerate()
                .filter(|(_, (els, _))| els.contains(&e))
                .map(|(i, _)| vars[i]);
            m.add_ge(format!("cover{e}"), LinExpr::sum(covering), 1.0);
        }
        let r = solve(&m);
        assert_eq!(r.status(), SolveStatus::Optimal);
        assert_eq!(r.objective().unwrap().round() as i64, 5);
    }

    #[test]
    fn infeasible_binary_model() {
        let mut m = Model::minimize();
        let x = m.binary("x");
        let y = m.binary("y");
        m.add_ge("hi", LinExpr::sum([x, y]), 3.0);
        assert_eq!(solve(&m).status(), SolveStatus::Infeasible);
    }

    #[test]
    fn general_integers() {
        // min 3x + 4y s.t. 2x + y >= 7, x + 3y >= 9, x,y in [0,10] integer.
        // LP optimum fractional; brute force integer optimum below.
        let mut m = Model::minimize();
        let x = m.integer("x", 0.0, 10.0);
        let y = m.integer("y", 0.0, 10.0);
        m.set_objective(LinExpr::term(3.0, x) + LinExpr::term(4.0, y));
        m.add_ge("c1", LinExpr::term(2.0, x) + LinExpr::term(1.0, y), 7.0);
        m.add_ge("c2", LinExpr::term(1.0, x) + LinExpr::term(3.0, y), 9.0);
        let mut best = f64::INFINITY;
        for xi in 0..=10 {
            for yi in 0..=10 {
                let (xf, yf) = (f64::from(xi), f64::from(yi));
                if 2.0 * xf + yf >= 7.0 && xf + 3.0 * yf >= 9.0 {
                    best = best.min(3.0 * xf + 4.0 * yf);
                }
            }
        }
        let r = solve(&m);
        assert_eq!(r.status(), SolveStatus::Optimal);
        assert!((r.objective().unwrap() - best).abs() < 1e-6);
    }

    #[test]
    fn mip_start_is_used_and_improved() {
        let mut m = Model::maximize();
        let a = m.binary("a");
        let b = m.binary("b");
        m.set_objective(LinExpr::term(2.0, a) + LinExpr::term(3.0, b));
        m.add_le("cap", LinExpr::sum([a, b]), 1.0);
        let params = SolveParams {
            mip_start: Some(vec![1.0, 0.0]), // objective 2; optimum is 3
            ..SolveParams::default()
        };
        let r = m.solve(&params);
        assert_eq!(r.status(), SolveStatus::Optimal);
        assert_eq!(r.objective().unwrap().round() as i64, 3);
    }

    #[test]
    fn infeasible_mip_start_ignored() {
        let mut m = Model::minimize();
        let a = m.binary("a");
        m.set_objective(LinExpr::term(1.0, a));
        m.add_ge("one", LinExpr::term(1.0, a), 1.0);
        let params = SolveParams {
            mip_start: Some(vec![0.0]), // violates `one`
            ..SolveParams::default()
        };
        let r = m.solve(&params);
        assert_eq!(r.status(), SolveStatus::Optimal);
        assert_eq!(r.objective().unwrap().round() as i64, 1);
    }

    #[test]
    fn fractional_mip_start_rejected() {
        // max a + b s.t. a + b <= 1, binaries. The point (0.5, 0.5) is
        // *linearly* feasible with objective 1.0 — accepting it as the
        // incumbent would prune both genuine optima (objective 1) and
        // report the fractional vector as the solution.
        let mut m = Model::maximize();
        let a = m.binary("a");
        let b = m.binary("b");
        m.set_objective(LinExpr::sum([a, b]));
        m.add_le("cap", LinExpr::sum([a, b]), 1.0);
        let params = SolveParams {
            mip_start: Some(vec![0.5, 0.5]),
            ..SolveParams::default()
        };
        let r = m.solve(&params);
        assert_eq!(r.status(), SolveStatus::Optimal);
        assert_eq!(r.objective().unwrap().round() as i64, 1);
        let vals = r.values().unwrap();
        for v in vals {
            assert!(
                (v - v.round()).abs() < 1e-6,
                "solution must be integral, got {v}"
            );
        }
    }

    #[test]
    fn wrong_length_mip_start_ignored() {
        let mut m = Model::minimize();
        let a = m.binary("a");
        m.set_objective(LinExpr::term(1.0, a));
        m.add_ge("one", LinExpr::term(1.0, a), 1.0);
        let params = SolveParams {
            mip_start: Some(vec![1.0, 0.0, 1.0]), // three values, one var
            ..SolveParams::default()
        };
        let r = m.solve(&params);
        assert_eq!(r.status(), SolveStatus::Optimal);
        assert_eq!(r.objective().unwrap().round() as i64, 1);
    }

    #[test]
    fn node_limit_degrades_gracefully() {
        let mut m = Model::maximize();
        let vars: Vec<_> = (0..12).map(|i| m.binary(format!("v{i}"))).collect();
        let mut obj = LinExpr::new();
        let mut cap = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            obj.add_term(f64::from(i as u32 % 5 + 1), v);
            cap.add_term(f64::from(i as u32 % 7 + 2), v);
        }
        m.set_objective(obj);
        m.add_le("cap", cap, 17.0);
        let params = SolveParams {
            node_limit: 1,
            ..SolveParams::default()
        };
        let r = m.solve(&params);
        // With one node we cannot prove anything, but must not claim Optimal
        // unless the root LP was already integral.
        if r.status() == SolveStatus::Optimal {
            assert!(r.nodes() <= 1);
        } else {
            assert!(matches!(
                r.status(),
                SolveStatus::Feasible | SolveStatus::Unknown
            ));
        }
    }

    #[test]
    fn equality_bound_binary_chain() {
        // Exactly-one over 5 binaries with distinct costs picks the cheapest.
        let mut m = Model::minimize();
        let vars: Vec<_> = (0..5).map(|i| m.binary(format!("v{i}"))).collect();
        let mut obj = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            obj.add_term(f64::from(5 - i as u32), v);
        }
        m.set_objective(obj);
        m.add_eq("pick", LinExpr::sum(vars.clone()), 1.0);
        let r = solve(&m);
        let s = r.into_solution().unwrap();
        assert_eq!(s.objective().round() as i64, 1);
        assert_eq!(s.value(vars[4]).round() as i64, 1);
    }

    #[test]
    fn bound_equals_objective_at_optimality() {
        let mut m = Model::minimize();
        let x = m.binary("x");
        let y = m.binary("y");
        m.set_objective(LinExpr::term(3.0, x) + LinExpr::term(5.0, y));
        m.add_ge("one", LinExpr::sum([x, y]), 1.0);
        let r = solve(&m);
        assert_eq!(r.status(), SolveStatus::Optimal);
        assert_eq!(r.bound(), r.objective());
    }

    #[test]
    fn bound_never_exceeds_objective_when_truncated() {
        // Minimization: the proven lower bound must not exceed the
        // incumbent, even when the node limit truncates the tree.
        let mut m = Model::minimize();
        let vars: Vec<_> = (0..14).map(|i| m.binary(format!("v{i}"))).collect();
        let mut obj = LinExpr::new();
        let mut cover = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            obj.add_term(f64::from(i as u32 % 6 + 1), v);
            cover.add_term(f64::from(i as u32 % 4 + 1), v);
        }
        m.set_objective(obj);
        m.add_ge("cover", cover, 11.0);
        let params = SolveParams {
            node_limit: 3,
            ..SolveParams::default()
        };
        let r = m.solve(&params);
        if let (Some(b), Some(o)) = (r.bound(), r.objective()) {
            assert!(b <= o + 1e-9, "bound {b} above objective {o}");
        }
    }

    #[test]
    fn maximization_objective_sign_round_trip() {
        let mut m = Model::maximize();
        let x = m.integer("x", 0.0, 9.0);
        m.set_objective(LinExpr::term(2.0, x) + 100.0);
        m.add_le("cap", LinExpr::term(1.0, x), 4.0);
        let r = solve(&m);
        assert_eq!(r.objective().unwrap().round() as i64, 108);
    }

    #[test]
    fn dense_engine_matches_sparse_end_to_end() {
        let mut m = Model::maximize();
        let a = m.binary("a");
        let b = m.binary("b");
        let c = m.binary("c");
        m.set_objective(LinExpr::term(10.0, a) + LinExpr::term(13.0, b) + LinExpr::term(7.0, c));
        m.add_le(
            "cap",
            LinExpr::term(5.0, a) + LinExpr::term(6.0, b) + LinExpr::term(4.0, c),
            10.0,
        );
        for engine in [LpEngine::Sparse, LpEngine::Dense] {
            let params = SolveParams {
                lp_engine: engine,
                ..SolveParams::default()
            };
            let r = m.solve(&params);
            assert_eq!(r.status(), SolveStatus::Optimal, "{engine:?}");
            assert_eq!(r.objective().unwrap().round() as i64, 20, "{engine:?}");
        }
    }

    #[test]
    fn cancelled_mid_search_never_reports_infeasible() {
        // A feasible covering model whose search is cancelled before the
        // first node: the regression was LP Cancelled outcomes being
        // conflated with LP failures, and truncated searches reporting
        // the leftover `infeasible_proven` flag as a proof.
        let mut m = Model::minimize();
        let vars: Vec<_> = (0..16).map(|i| m.binary(format!("v{i}"))).collect();
        let mut obj = LinExpr::new();
        let mut cover = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            obj.add_term(f64::from(i as u32 % 6 + 1), v);
            cover.add_term(f64::from(i as u32 % 4 + 1), v);
        }
        m.set_objective(obj);
        m.add_ge("cover", cover, 13.0);
        let cancel = Cancellation::new();
        cancel.cancel();
        let params = SolveParams {
            cancel,
            ..SolveParams::default()
        };
        let r = m.solve(&params);
        assert_ne!(
            r.status(),
            SolveStatus::Infeasible,
            "truncated search claimed an infeasibility proof"
        );
        assert_ne!(r.status(), SolveStatus::Optimal);
        assert!(!r.lp_failures(), "cancellation is not an LP failure");
    }

    #[test]
    fn cancelled_lp_outcomes_do_not_set_lp_failures() {
        // Cancel *during* the search (deadline in the near future) so the
        // trip lands inside a node LP, not only at the between-node check.
        let mut m = Model::minimize();
        let vars: Vec<_> = (0..18).map(|i| m.binary(format!("v{i}"))).collect();
        let mut obj = LinExpr::new();
        let mut cover = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            obj.add_term(f64::from(i as u32 % 7 + 1), v);
            cover.add_term(f64::from(i as u32 % 5 + 1), v);
        }
        m.set_objective(obj);
        m.add_ge("cover", cover, 19.0);
        let params = SolveParams {
            cancel: Cancellation::with_deadline(Duration::from_micros(200)),
            time_limit: None,
            ..SolveParams::default()
        };
        let r = m.solve(&params);
        assert_ne!(r.status(), SolveStatus::Infeasible);
        assert!(!r.lp_failures(), "cancellation is not an LP failure");
    }

    #[test]
    fn warm_start_matches_cold_start_over_the_tree() {
        // Same model solved with and without warm starts must land on the
        // same optimum (node/iteration counts may differ).
        let mut m = Model::minimize();
        let x = m.integer("x", 0.0, 10.0);
        let y = m.integer("y", 0.0, 10.0);
        let z = m.integer("z", 0.0, 10.0);
        m.set_objective(LinExpr::term(3.0, x) + LinExpr::term(4.0, y) + LinExpr::term(2.0, z));
        m.add_ge("c1", LinExpr::term(2.0, x) + LinExpr::term(1.0, y), 7.0);
        m.add_ge("c2", LinExpr::term(1.0, x) + LinExpr::term(3.0, z), 9.0);
        m.add_ge("c3", LinExpr::term(1.0, y) + LinExpr::term(1.0, z), 4.0);
        let warm = m.solve(&SolveParams::default());
        let cold = m.solve(&SolveParams {
            warm_start: false,
            ..SolveParams::default()
        });
        assert_eq!(warm.status(), SolveStatus::Optimal);
        assert_eq!(cold.status(), SolveStatus::Optimal);
        assert!((warm.objective().unwrap() - cold.objective().unwrap()).abs() < 1e-6);
        assert!(
            warm.lp_iterations() <= cold.lp_iterations(),
            "warm starts took more iterations ({}) than cold starts ({})",
            warm.lp_iterations(),
            cold.lp_iterations()
        );
    }

    #[test]
    fn solve_result_reports_lp_effort() {
        let mut m = Model::minimize();
        let x = m.integer("x", 0.0, 10.0);
        let y = m.integer("y", 0.0, 10.0);
        m.set_objective(LinExpr::term(3.0, x) + LinExpr::term(4.0, y));
        m.add_ge("c1", LinExpr::term(2.0, x) + LinExpr::term(1.0, y), 7.0);
        m.add_ge("c2", LinExpr::term(1.0, x) + LinExpr::term(3.0, y), 9.0);
        let r = solve(&m);
        assert_eq!(r.status(), SolveStatus::Optimal);
        assert!(r.lp_iterations() > 0, "LP effort must be accounted");
        assert!(
            r.refactorizations() > 0,
            "every LP factorizes at least once"
        );
        assert!(!r.lp_failures());
    }
}
