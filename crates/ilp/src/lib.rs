//! A self-contained mixed 0-1/integer linear-programming solver.
//!
//! The DAC'14 paper this workspace reproduces solves its scheduling/binding
//! formulation with the commercial solver *Lingo*. No comparable solver is
//! available as an offline dependency, so this crate implements the
//! substrate from scratch:
//!
//! - a [`Model`] builder ([`LinExpr`], [`Cmp`], bounds, integrality);
//! - a bounded-variable two-phase primal **revised** simplex for the LP
//!   relaxations (CSC sparse columns, LU + eta-file basis updates, devex
//!   pricing), with the dense predecessor retained as a cross-check
//!   baseline selectable via [`LpEngine`];
//! - LP-based branch & bound with most-fractional branching, MIP starts,
//!   warm-started child LPs, time/node limits and graceful degradation
//!   ([`SolveStatus::Feasible`] mirrors the paper's `*`-marked best-effort
//!   rows).
//!
//! All variable bounds must be finite — true by construction for the 0-1
//! scheduling formulations this workspace generates.
//!
//! # Quickstart
//!
//! ```
//! use troy_ilp::{LinExpr, Model, SolveParams, SolveStatus};
//!
//! // Pick the cheaper of two licenses covering a requirement.
//! let mut m = Model::minimize();
//! let a = m.binary("license_a");
//! let b = m.binary("license_b");
//! m.set_objective(LinExpr::term(450.0, a) + LinExpr::term(630.0, b));
//! m.add_ge("need-one", LinExpr::sum([a, b]), 1.0);
//!
//! let result = m.solve(&SolveParams::default());
//! assert_eq!(result.status(), SolveStatus::Optimal);
//! assert_eq!(result.objective().unwrap() as i64, 450);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cancel;
mod dense;
mod export;
mod model;
mod presolve;
mod simplex;
mod solve;

pub use cancel::Cancellation;
pub use export::to_lp_format;
pub use model::{Cmp, Constraint, LinExpr, Model, Sense, VarId, VarKind, Variable};
pub use presolve::{presolve, Presolved};
pub use solve::{LpEngine, Solution, SolveParams, SolveResult, SolveStatus};
