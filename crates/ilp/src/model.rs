//! Model-building API: variables, linear expressions, constraints and an
//! objective, assembled into a [`Model`] that the solver consumes.

use std::fmt;
use std::ops::{Add, AddAssign, Mul};

/// Handle to a decision variable inside a [`Model`].
///
/// # Examples
///
/// ```
/// use troy_ilp::Model;
///
/// let mut m = Model::minimize();
/// let x = m.binary("x");
/// let y = m.binary("y");
/// assert_ne!(x, y);
/// assert_eq!(m.num_vars(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// Dense index of this variable in its model.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Whether a variable must take integer values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Real-valued within its bounds.
    Continuous,
    /// Integer-valued within its bounds (binaries are `Integer` in `[0,1]`).
    Integer,
}

/// A decision variable: bounds, integrality and a debug name.
#[derive(Debug, Clone)]
pub struct Variable {
    pub(crate) name: String,
    pub(crate) kind: VarKind,
    pub(crate) lower: f64,
    pub(crate) upper: f64,
}

impl Variable {
    /// The variable's debug name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Lower bound.
    #[must_use]
    pub fn lower(&self) -> f64 {
        self.lower
    }

    /// Upper bound.
    #[must_use]
    pub fn upper(&self) -> f64 {
        self.upper
    }

    /// Integrality.
    #[must_use]
    pub fn kind(&self) -> VarKind {
        self.kind
    }

    /// `true` for an integer variable bounded within `[0, 1]`.
    #[must_use]
    pub fn is_binary(&self) -> bool {
        self.kind == VarKind::Integer && self.lower >= 0.0 && self.upper <= 1.0
    }
}

/// Sparse linear expression `Σ coeff·var + constant`.
///
/// Built with [`LinExpr::term`], `+` and `*`, or collected from an iterator
/// of `(VarId, f64)` pairs.
///
/// # Examples
///
/// ```
/// use troy_ilp::{LinExpr, Model};
///
/// let mut m = Model::minimize();
/// let x = m.binary("x");
/// let y = m.binary("y");
/// let e = LinExpr::term(2.0, x) + LinExpr::term(3.0, y) + 1.0;
/// assert_eq!(e.coeff(x), 2.0);
/// assert_eq!(e.constant(), 1.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinExpr {
    /// Term list; duplicates are merged lazily by [`LinExpr::normalize`].
    terms: Vec<(VarId, f64)>,
    constant: f64,
}

impl LinExpr {
    /// The zero expression.
    #[must_use]
    pub fn new() -> Self {
        LinExpr::default()
    }

    /// Single term `coeff * var`.
    #[must_use]
    pub fn term(coeff: f64, var: VarId) -> Self {
        LinExpr {
            terms: vec![(var, coeff)],
            constant: 0.0,
        }
    }

    /// Sum of variables, each with coefficient 1.
    #[must_use]
    pub fn sum(vars: impl IntoIterator<Item = VarId>) -> Self {
        LinExpr {
            terms: vars.into_iter().map(|v| (v, 1.0)).collect(),
            constant: 0.0,
        }
    }

    /// Adds `coeff * var` in place.
    pub fn add_term(&mut self, coeff: f64, var: VarId) {
        self.terms.push((var, coeff));
    }

    /// Adds a constant in place.
    pub fn add_constant(&mut self, c: f64) {
        self.constant += c;
    }

    /// The merged coefficient of `var`.
    #[must_use]
    pub fn coeff(&self, var: VarId) -> f64 {
        self.terms
            .iter()
            .filter(|(v, _)| *v == var)
            .map(|(_, c)| c)
            .sum()
    }

    /// The constant offset.
    #[must_use]
    pub fn constant(&self) -> f64 {
        self.constant
    }

    /// Merges duplicate variables and drops zero coefficients; returns the
    /// sorted `(var, coeff)` list.
    #[must_use]
    pub fn normalize(&self) -> Vec<(VarId, f64)> {
        let mut terms = self.terms.clone();
        terms.sort_by_key(|(v, _)| *v);
        let mut out: Vec<(VarId, f64)> = Vec::with_capacity(terms.len());
        for (v, c) in terms {
            match out.last_mut() {
                Some((lv, lc)) if *lv == v => *lc += c,
                _ => out.push((v, c)),
            }
        }
        out.retain(|(_, c)| c.abs() > 1e-12);
        out
    }

    /// Consumes the expression, returning its normalized terms and its
    /// constant part.
    #[must_use]
    pub fn into_parts(self) -> (Vec<(VarId, f64)>, f64) {
        let constant = self.constant;
        (self.normalize(), constant)
    }

    /// Evaluates the expression against a dense assignment.
    #[must_use]
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.constant
            + self
                .terms
                .iter()
                .map(|(v, c)| c * values[v.index()])
                .sum::<f64>()
    }
}

impl FromIterator<(VarId, f64)> for LinExpr {
    fn from_iter<T: IntoIterator<Item = (VarId, f64)>>(iter: T) -> Self {
        LinExpr {
            terms: iter.into_iter().collect(),
            constant: 0.0,
        }
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        self.terms.extend(rhs.terms);
        self.constant += rhs.constant;
        self
    }
}

impl Add<f64> for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: f64) -> LinExpr {
        self.constant += rhs;
        self
    }
}

impl AddAssign for LinExpr {
    fn add_assign(&mut self, rhs: LinExpr) {
        self.terms.extend(rhs.terms);
        self.constant += rhs.constant;
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, rhs: f64) -> LinExpr {
        for (_, c) in &mut self.terms {
            *c *= rhs;
        }
        self.constant *= rhs;
        self
    }
}

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `expr ≤ rhs`
    Le,
    /// `expr = rhs`
    Eq,
    /// `expr ≥ rhs`
    Ge,
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Cmp::Le => "<=",
            Cmp::Eq => "=",
            Cmp::Ge => ">=",
        })
    }
}

/// One linear constraint `expr sense rhs` (constant folded into rhs).
#[derive(Debug, Clone)]
pub struct Constraint {
    pub(crate) name: String,
    pub(crate) terms: Vec<(VarId, f64)>,
    pub(crate) sense: Cmp,
    pub(crate) rhs: f64,
}

impl Constraint {
    /// Debug name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Normalized terms.
    #[must_use]
    pub fn terms(&self) -> &[(VarId, f64)] {
        &self.terms
    }

    /// Sense.
    #[must_use]
    pub fn sense(&self) -> Cmp {
        self.sense
    }

    /// Right-hand side (after folding the expression constant).
    #[must_use]
    pub fn rhs(&self) -> f64 {
        self.rhs
    }

    /// Whether a dense assignment satisfies this constraint within `tol`.
    #[must_use]
    pub fn satisfied_by(&self, values: &[f64], tol: f64) -> bool {
        let lhs: f64 = self.terms.iter().map(|(v, c)| c * values[v.index()]).sum();
        match self.sense {
            Cmp::Le => lhs <= self.rhs + tol,
            Cmp::Eq => (lhs - self.rhs).abs() <= tol,
            Cmp::Ge => lhs >= self.rhs - tol,
        }
    }
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// A mixed 0-1/integer/continuous linear program.
///
/// # Examples
///
/// A tiny knapsack:
///
/// ```
/// use troy_ilp::{LinExpr, Model, SolveParams};
///
/// let mut m = Model::maximize();
/// let a = m.binary("a");
/// let b = m.binary("b");
/// let c = m.binary("c");
/// m.set_objective(LinExpr::term(10.0, a) + LinExpr::term(13.0, b) + LinExpr::term(7.0, c));
/// m.add_le("cap", LinExpr::term(5.0, a) + LinExpr::term(6.0, b) + LinExpr::term(4.0, c), 10.0);
/// let sol = m.solve(&SolveParams::default()).into_solution().expect("solvable");
/// assert_eq!(sol.objective().round() as i64, 20);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Model {
    sense: Sense,
    vars: Vec<Variable>,
    constraints: Vec<Constraint>,
    objective: Vec<(VarId, f64)>,
    objective_offset: f64,
}

impl Model {
    /// New minimization model.
    #[must_use]
    pub fn minimize() -> Self {
        Model::with_sense(Sense::Minimize)
    }

    /// New maximization model.
    #[must_use]
    pub fn maximize() -> Self {
        Model::with_sense(Sense::Maximize)
    }

    /// New model with an explicit sense.
    #[must_use]
    pub fn with_sense(sense: Sense) -> Self {
        Model {
            sense,
            vars: Vec::new(),
            constraints: Vec::new(),
            objective: Vec::new(),
            objective_offset: 0.0,
        }
    }

    /// Optimization direction.
    #[must_use]
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Adds a binary (0/1 integer) variable.
    pub fn binary(&mut self, name: impl Into<String>) -> VarId {
        self.var(name, VarKind::Integer, 0.0, 1.0)
    }

    /// Adds a general integer variable with inclusive bounds.
    pub fn integer(&mut self, name: impl Into<String>, lower: f64, upper: f64) -> VarId {
        self.var(name, VarKind::Integer, lower, upper)
    }

    /// Adds a continuous variable with inclusive bounds.
    pub fn continuous(&mut self, name: impl Into<String>, lower: f64, upper: f64) -> VarId {
        self.var(name, VarKind::Continuous, lower, upper)
    }

    fn var(&mut self, name: impl Into<String>, kind: VarKind, lower: f64, upper: f64) -> VarId {
        assert!(
            lower <= upper,
            "variable bounds must satisfy lower <= upper"
        );
        assert!(
            lower.is_finite() && upper.is_finite(),
            "this solver requires finite variable bounds"
        );
        let id = VarId(u32::try_from(self.vars.len()).expect("var count fits u32"));
        self.vars.push(Variable {
            name: name.into(),
            kind,
            lower,
            upper,
        });
        id
    }

    /// Number of variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Variable metadata.
    #[must_use]
    pub fn variable(&self, id: VarId) -> &Variable {
        &self.vars[id.index()]
    }

    /// All constraints.
    #[must_use]
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Sets the objective expression (its constant becomes a fixed offset).
    pub fn set_objective(&mut self, expr: LinExpr) {
        let (terms, constant) = expr.into_parts();
        self.objective = terms;
        self.objective_offset = constant;
    }

    /// The normalized objective terms.
    #[must_use]
    pub fn objective(&self) -> &[(VarId, f64)] {
        &self.objective
    }

    /// Constant offset added to the objective value.
    #[must_use]
    pub fn objective_offset(&self) -> f64 {
        self.objective_offset
    }

    /// Adds `expr <= rhs`.
    pub fn add_le(&mut self, name: impl Into<String>, expr: LinExpr, rhs: f64) {
        self.add_constraint(name, expr, Cmp::Le, rhs);
    }

    /// Adds `expr = rhs`.
    pub fn add_eq(&mut self, name: impl Into<String>, expr: LinExpr, rhs: f64) {
        self.add_constraint(name, expr, Cmp::Eq, rhs);
    }

    /// Adds `expr >= rhs`.
    pub fn add_ge(&mut self, name: impl Into<String>, expr: LinExpr, rhs: f64) {
        self.add_constraint(name, expr, Cmp::Ge, rhs);
    }

    /// Adds a constraint with an explicit sense.
    ///
    /// # Panics
    ///
    /// Panics if the expression references a variable not in this model.
    pub fn add_constraint(&mut self, name: impl Into<String>, expr: LinExpr, sense: Cmp, rhs: f64) {
        let (terms, constant) = expr.into_parts();
        for &(v, _) in &terms {
            assert!(
                v.index() < self.vars.len(),
                "constraint references unknown variable {v}"
            );
        }
        self.constraints.push(Constraint {
            name: name.into(),
            terms,
            sense,
            rhs: rhs - constant,
        });
    }

    /// Objective value of a dense assignment (including offset).
    #[must_use]
    pub fn objective_value(&self, values: &[f64]) -> f64 {
        self.objective_offset
            + self
                .objective
                .iter()
                .map(|(v, c)| c * values[v.index()])
                .sum::<f64>()
    }

    /// Checks a dense assignment against bounds, integrality and all
    /// constraints. Returns the name of the first violated item.
    #[must_use]
    pub fn check_feasible(&self, values: &[f64], tol: f64) -> Option<String> {
        if values.len() != self.vars.len() {
            return Some(format!(
                "assignment has {} values for {} variables",
                values.len(),
                self.vars.len()
            ));
        }
        for (i, var) in self.vars.iter().enumerate() {
            let x = values[i];
            if x < var.lower - tol || x > var.upper + tol {
                return Some(format!("variable {} out of bounds: {x}", var.name));
            }
            if var.kind == VarKind::Integer && (x - x.round()).abs() > tol {
                return Some(format!("variable {} not integral: {x}", var.name));
            }
        }
        self.constraints
            .iter()
            .find(|c| !c.satisfied_by(values, tol))
            .map(|c| format!("constraint {} violated", c.name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_building_and_eval() {
        let mut m = Model::minimize();
        let x = m.binary("x");
        let y = m.binary("y");
        let e = LinExpr::term(2.0, x) + LinExpr::term(3.0, y) + LinExpr::term(1.0, x) + 5.0;
        assert_eq!(e.coeff(x), 3.0);
        assert_eq!(e.constant(), 5.0);
        assert_eq!(e.eval(&[1.0, 1.0]), 11.0);
        let n = e.normalize();
        assert_eq!(n, vec![(x, 3.0), (y, 3.0)]);
    }

    #[test]
    fn expr_sum_and_scale() {
        let mut m = Model::minimize();
        let vars: Vec<VarId> = (0..3).map(|i| m.binary(format!("v{i}"))).collect();
        let e = LinExpr::sum(vars.clone()) * 2.0;
        for &v in &vars {
            assert_eq!(e.coeff(v), 2.0);
        }
    }

    #[test]
    fn zero_coefficients_dropped() {
        let mut m = Model::minimize();
        let x = m.binary("x");
        let e = LinExpr::term(1.0, x) + LinExpr::term(-1.0, x);
        assert!(e.normalize().is_empty());
    }

    #[test]
    fn constraint_constant_folds_into_rhs() {
        let mut m = Model::minimize();
        let x = m.binary("x");
        m.add_le("c", LinExpr::term(1.0, x) + 2.0, 3.0);
        assert_eq!(m.constraints()[0].rhs(), 1.0);
    }

    #[test]
    fn check_feasible_flags_violations() {
        let mut m = Model::minimize();
        let x = m.binary("x");
        let y = m.continuous("y", 0.0, 10.0);
        m.add_ge("min", LinExpr::term(1.0, x) + LinExpr::term(1.0, y), 2.0);
        assert!(m.check_feasible(&[1.0, 1.0], 1e-6).is_none());
        assert!(m
            .check_feasible(&[0.5, 1.5], 1e-6)
            .is_some_and(|s| s.contains("not integral")));
        assert!(m
            .check_feasible(&[0.0, 1.0], 1e-6)
            .is_some_and(|s| s.contains("violated")));
        assert!(m
            .check_feasible(&[0.0, 11.0], 1e-6)
            .is_some_and(|s| s.contains("out of bounds")));
        assert!(m.check_feasible(&[0.0], 1e-6).is_some());
    }

    #[test]
    fn satisfied_by_all_senses() {
        let mut m = Model::minimize();
        let x = m.continuous("x", 0.0, 10.0);
        m.add_le("le", LinExpr::term(1.0, x), 5.0);
        m.add_eq("eq", LinExpr::term(1.0, x), 5.0);
        m.add_ge("ge", LinExpr::term(1.0, x), 5.0);
        let cs = m.constraints();
        assert!(cs[0].satisfied_by(&[4.0], 1e-9));
        assert!(!cs[1].satisfied_by(&[4.0], 1e-9));
        assert!(!cs[2].satisfied_by(&[4.0], 1e-9));
        assert!(cs.iter().all(|c| c.satisfied_by(&[5.0], 1e-9)));
    }

    #[test]
    #[should_panic(expected = "lower <= upper")]
    fn inverted_bounds_panic() {
        let mut m = Model::minimize();
        let _ = m.continuous("bad", 2.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn foreign_variable_panics() {
        let mut m1 = Model::minimize();
        let mut m2 = Model::minimize();
        let _ = m1.binary("x");
        let x1 = m1.binary("y");
        let _ = m2.binary("z");
        // m2 has 1 var; x1 has index 1 -> unknown in m2.
        m2.add_le("c", LinExpr::term(1.0, x1), 1.0);
    }

    #[test]
    fn objective_value_includes_offset() {
        let mut m = Model::minimize();
        let x = m.binary("x");
        m.set_objective(LinExpr::term(4.0, x) + 10.0);
        assert_eq!(m.objective_value(&[1.0]), 14.0);
        assert_eq!(m.objective_offset(), 10.0);
    }

    #[test]
    fn variable_metadata() {
        let mut m = Model::minimize();
        let x = m.integer("x", -2.0, 7.0);
        let v = m.variable(x);
        assert_eq!(v.name(), "x");
        assert_eq!(v.lower(), -2.0);
        assert_eq!(v.upper(), 7.0);
        assert_eq!(v.kind(), VarKind::Integer);
        assert!(!v.is_binary());
        let b = m.binary("b");
        assert!(m.variable(b).is_binary());
    }
}
