//! CPLEX-LP-format export, for eyeballing models and for feeding them to
//! external solvers when one is available.

use std::fmt::Write as _;

use crate::model::{Cmp, Model, Sense, VarKind};

/// Renders a model in the (widely supported) CPLEX LP text format.
///
/// Variable names are sanitized to `x<i>` because model names may contain
/// characters the format forbids; a trailing comment block maps them back.
///
/// # Examples
///
/// ```
/// use troy_ilp::{to_lp_format, LinExpr, Model};
///
/// let mut m = Model::maximize();
/// let a = m.binary("alpha");
/// m.set_objective(LinExpr::term(3.0, a));
/// m.add_le("cap", LinExpr::term(2.0, a), 1.0);
/// let text = to_lp_format(&m);
/// assert!(text.starts_with("Maximize"));
/// assert!(text.contains("Binaries"));
/// assert!(text.contains("\\ x0 = alpha"));
/// ```
#[must_use]
pub fn to_lp_format(model: &Model) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}",
        match model.sense() {
            Sense::Minimize => "Minimize",
            Sense::Maximize => "Maximize",
        }
    );
    let _ = write!(out, " obj:");
    if model.objective().is_empty() {
        let _ = write!(out, " 0 x0");
    }
    for &(v, c) in model.objective() {
        let _ = write!(out, " {} {} x{}", sign(c), c.abs(), v.index());
    }
    let _ = writeln!(out);

    let _ = writeln!(out, "Subject To");
    for (i, c) in model.constraints().iter().enumerate() {
        let _ = write!(out, " c{i}:");
        for &(v, a) in c.terms() {
            let _ = write!(out, " {} {} x{}", sign(a), a.abs(), v.index());
        }
        let op = match c.sense() {
            Cmp::Le => "<=",
            Cmp::Eq => "=",
            Cmp::Ge => ">=",
        };
        let _ = writeln!(out, " {op} {}", c.rhs());
    }

    let _ = writeln!(out, "Bounds");
    let mut binaries = Vec::new();
    let mut generals = Vec::new();
    for i in 0..model.num_vars() {
        let v = model.variable(crate::model::VarId(i as u32));
        match v.kind() {
            VarKind::Integer if v.is_binary() => binaries.push(i),
            VarKind::Integer => {
                generals.push(i);
                let _ = writeln!(out, " {} <= x{i} <= {}", v.lower(), v.upper());
            }
            VarKind::Continuous => {
                let _ = writeln!(out, " {} <= x{i} <= {}", v.lower(), v.upper());
            }
        }
    }
    if !binaries.is_empty() {
        let _ = writeln!(out, "Binaries");
        let _ = write!(out, " ");
        for i in &binaries {
            let _ = write!(out, "x{i} ");
        }
        let _ = writeln!(out);
    }
    if !generals.is_empty() {
        let _ = writeln!(out, "Generals");
        let _ = write!(out, " ");
        for i in &generals {
            let _ = write!(out, "x{i} ");
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out, "End");
    for i in 0..model.num_vars() {
        let v = model.variable(crate::model::VarId(i as u32));
        let _ = writeln!(out, "\\ x{i} = {}", v.name());
    }
    out
}

fn sign(x: f64) -> char {
    if x < 0.0 {
        '-'
    } else {
        '+'
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LinExpr;

    #[test]
    fn sections_present_and_ordered() {
        let mut m = Model::minimize();
        let x = m.binary("x");
        let y = m.integer("y", 0.0, 9.0);
        let z = m.continuous("z", -1.0, 1.0);
        m.set_objective(LinExpr::term(1.0, x) + LinExpr::term(-2.0, y));
        m.add_ge("g", LinExpr::term(1.0, x) + LinExpr::term(1.0, z), 0.5);
        let text = to_lp_format(&m);
        let idx = |needle: &str| text.find(needle).unwrap_or_else(|| panic!("{needle}"));
        assert!(idx("Minimize") < idx("Subject To"));
        assert!(idx("Subject To") < idx("Bounds"));
        assert!(idx("Bounds") < idx("Binaries"));
        assert!(idx("Binaries") < idx("Generals"));
        assert!(idx("Generals") < idx("End"));
        assert!(text.contains("- 2 x1"));
        assert!(text.contains(">= 0.5"));
    }

    #[test]
    fn empty_objective_still_valid() {
        let mut m = Model::minimize();
        let _ = m.binary("x");
        let text = to_lp_format(&m);
        assert!(text.contains("obj: 0 x0"));
    }

    #[test]
    fn name_map_is_appended() {
        let mut m = Model::minimize();
        let _ = m.binary("delta_Ven1_adder");
        let text = to_lp_format(&m);
        assert!(text.contains("\\ x0 = delta_Ven1_adder"));
    }
}
