//! Property tests: the branch & bound must agree with exhaustive
//! enumeration on randomly generated tiny 0-1 programs.

use proptest::prelude::*;
use troy_ilp::{presolve, Cmp, LinExpr, Model, SolveParams, SolveStatus, VarId};

/// A randomly generated 0-1 program, small enough to brute force.
#[derive(Debug, Clone)]
struct TinyIlp {
    maximize: bool,
    num_vars: usize,
    objective: Vec<i32>,
    /// Constraints as (coefficients, sense, rhs).
    rows: Vec<(Vec<i32>, Cmp, i32)>,
}

fn tiny_ilp() -> impl Strategy<Value = TinyIlp> {
    (2usize..=6, any::<bool>()).prop_flat_map(|(n, maximize)| {
        let obj = proptest::collection::vec(-9i32..=9, n);
        let row = (
            proptest::collection::vec(-5i32..=5, n),
            prop_oneof![Just(Cmp::Le), Just(Cmp::Ge), Just(Cmp::Eq)],
            -6i32..=12,
        );
        let rows = proptest::collection::vec(row, 1..=4);
        (obj, rows).prop_map(move |(objective, rows)| TinyIlp {
            maximize,
            num_vars: n,
            objective,
            rows,
        })
    })
}

fn build(t: &TinyIlp) -> (Model, Vec<VarId>) {
    let mut m = if t.maximize {
        Model::maximize()
    } else {
        Model::minimize()
    };
    let vars: Vec<VarId> = (0..t.num_vars).map(|i| m.binary(format!("x{i}"))).collect();
    let mut obj = LinExpr::new();
    for (&c, &v) in t.objective.iter().zip(&vars) {
        obj.add_term(f64::from(c), v);
    }
    m.set_objective(obj);
    for (i, (coeffs, sense, rhs)) in t.rows.iter().enumerate() {
        let mut e = LinExpr::new();
        for (&c, &v) in coeffs.iter().zip(&vars) {
            e.add_term(f64::from(c), v);
        }
        m.add_constraint(format!("r{i}"), e, *sense, f64::from(*rhs));
    }
    (m, vars)
}

/// Exhaustive optimum over all 2^n assignments; `None` when infeasible.
fn brute_force(t: &TinyIlp) -> Option<i64> {
    let mut best: Option<i64> = None;
    for mask in 0u32..(1 << t.num_vars) {
        let assignment: Vec<i64> = (0..t.num_vars).map(|i| i64::from(mask >> i & 1)).collect();
        let feasible = t.rows.iter().all(|(coeffs, sense, rhs)| {
            let lhs: i64 = coeffs
                .iter()
                .zip(&assignment)
                .map(|(&c, &x)| i64::from(c) * x)
                .sum();
            match sense {
                Cmp::Le => lhs <= i64::from(*rhs),
                Cmp::Eq => lhs == i64::from(*rhs),
                Cmp::Ge => lhs >= i64::from(*rhs),
            }
        });
        if !feasible {
            continue;
        }
        let obj: i64 = t
            .objective
            .iter()
            .zip(&assignment)
            .map(|(&c, &x)| i64::from(c) * x)
            .sum();
        best = Some(match best {
            None => obj,
            Some(b) if t.maximize => b.max(obj),
            Some(b) => b.min(obj),
        });
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn solver_matches_brute_force(t in tiny_ilp()) {
        let (model, _) = build(&t);
        let expected = brute_force(&t);
        let result = model.solve(&SolveParams::default());
        match expected {
            None => {
                prop_assert_eq!(result.status(), SolveStatus::Infeasible);
            }
            Some(best) => {
                prop_assert_eq!(result.status(), SolveStatus::Optimal);
                let got = result.objective().expect("optimal has objective");
                prop_assert!((got - best as f64).abs() < 1e-6,
                    "solver {} vs brute force {}", got, best);
                // And the reported assignment must actually be feasible.
                let values = result.values().expect("optimal has values");
                prop_assert!(model.check_feasible(values, 1e-6).is_none());
            }
        }
    }

    #[test]
    fn presolve_preserves_the_optimum(t in tiny_ilp()) {
        let (model, _) = build(&t);
        let expected = brute_force(&t);
        let reduced = presolve(&model);
        if reduced.infeasible {
            prop_assert!(expected.is_none(),
                "presolve claimed infeasible but optimum {:?} exists", expected);
            return Ok(());
        }
        let result = reduced.model.solve(&SolveParams::default());
        match expected {
            None => prop_assert_eq!(result.status(), SolveStatus::Infeasible),
            Some(best) => {
                prop_assert_eq!(result.status(), SolveStatus::Optimal);
                let got = result.objective().expect("optimal");
                prop_assert!((got - best as f64).abs() < 1e-6,
                    "presolved optimum {} vs brute force {}", got, best);
            }
        }
    }

    #[test]
    fn reported_values_always_reproduce_the_objective(t in tiny_ilp()) {
        let (model, _) = build(&t);
        let result = model.solve(&SolveParams::default());
        if let (Some(values), Some(obj)) = (result.values(), result.objective()) {
            let recomputed = model.objective_value(values);
            prop_assert!((recomputed - obj).abs() < 1e-6);
        }
    }
}
