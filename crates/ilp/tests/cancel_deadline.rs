//! Regression tests for [`Cancellation::child_with_deadline`] with
//! deadlines that are already in the past at construction time.
//!
//! The service daemon derives every request token through
//! `child_with_deadline`, so a request arriving with an exhausted budget
//! must die on its *first* poll — through the cancel-flag chain, not a
//! clock comparison that a descendant might never make.

use std::time::Duration;

use troy_ilp::Cancellation;

#[test]
fn zero_budget_child_is_cancelled_immediately() {
    let parent = Cancellation::new();
    let child = parent.child_with_deadline(Duration::ZERO);
    assert!(child.is_cancelled(), "past deadline trips the flag");
    assert!(child.is_expired());
    assert!(!parent.is_cancelled(), "cancellation never flows upward");
}

#[test]
fn child_of_an_expired_parent_deadline_is_cancelled_immediately() {
    // The parent's deadline has already passed; the child inherits a
    // deadline in the past and must be cancelled at construction even
    // with a generous budget of its own.
    let parent = Cancellation::with_deadline(Duration::ZERO);
    assert!(parent.is_expired());
    let child = parent.child_with_deadline(Duration::from_secs(3600));
    assert!(child.is_cancelled());
    assert!(child.is_expired());
}

#[test]
fn grandchildren_of_a_past_deadline_child_observe_the_flag() {
    // Derived tokens see the expiry through the flag chain alone: even a
    // grandchild constructed without any deadline of its own is expired.
    let parent = Cancellation::new();
    let child = parent.child_with_deadline(Duration::ZERO);
    let grandchild = child.child();
    assert!(grandchild.is_expired());
    assert!(grandchild.is_cancelled());
}

#[test]
fn future_budget_child_is_not_cancelled() {
    let parent = Cancellation::new();
    let child = parent.child_with_deadline(Duration::from_secs(3600));
    assert!(!child.is_cancelled());
    assert!(!child.is_expired());
    assert!(child.deadline().is_some());
}

#[test]
fn overflowing_budget_keeps_the_parent_deadline() {
    // `now + Duration::MAX` overflows `Instant`; the child must fall
    // back to the parent's (here: absent) deadline instead of minting a
    // bogus one — and must not be spuriously cancelled.
    let free = Cancellation::new();
    let child = free.child_with_deadline(Duration::MAX);
    assert!(!child.is_cancelled());
    assert!(!child.is_expired());

    // With a live parent deadline, the overflowed budget cannot extend it.
    let parent = Cancellation::with_deadline(Duration::from_secs(3600));
    let child = parent.child_with_deadline(Duration::MAX);
    assert_eq!(child.deadline(), parent.deadline());
}

#[test]
fn remaining_budget_of_a_past_deadline_child_is_zero() {
    let parent = Cancellation::new();
    let child = parent.child_with_deadline(Duration::ZERO);
    assert_eq!(child.remaining(), Some(Duration::ZERO));
}
