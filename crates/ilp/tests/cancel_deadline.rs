//! Regression tests for [`Cancellation::child_with_deadline`] with
//! deadlines that are already in the past at construction time.
//!
//! The service daemon derives every request token through
//! `child_with_deadline`, so a request arriving with an exhausted budget
//! must die on its *first* poll — through the cancel-flag chain, not a
//! clock comparison that a descendant might never make.

use std::time::Duration;

use troy_ilp::{Cancellation, LinExpr, Model, SolveParams, SolveStatus};

#[test]
fn zero_budget_child_is_cancelled_immediately() {
    let parent = Cancellation::new();
    let child = parent.child_with_deadline(Duration::ZERO);
    assert!(child.is_cancelled(), "past deadline trips the flag");
    assert!(child.is_expired());
    assert!(!parent.is_cancelled(), "cancellation never flows upward");
}

#[test]
fn child_of_an_expired_parent_deadline_is_cancelled_immediately() {
    // The parent's deadline has already passed; the child inherits a
    // deadline in the past and must be cancelled at construction even
    // with a generous budget of its own.
    let parent = Cancellation::with_deadline(Duration::ZERO);
    assert!(parent.is_expired());
    let child = parent.child_with_deadline(Duration::from_secs(3600));
    assert!(child.is_cancelled());
    assert!(child.is_expired());
}

#[test]
fn grandchildren_of_a_past_deadline_child_observe_the_flag() {
    // Derived tokens see the expiry through the flag chain alone: even a
    // grandchild constructed without any deadline of its own is expired.
    let parent = Cancellation::new();
    let child = parent.child_with_deadline(Duration::ZERO);
    let grandchild = child.child();
    assert!(grandchild.is_expired());
    assert!(grandchild.is_cancelled());
}

#[test]
fn future_budget_child_is_not_cancelled() {
    let parent = Cancellation::new();
    let child = parent.child_with_deadline(Duration::from_secs(3600));
    assert!(!child.is_cancelled());
    assert!(!child.is_expired());
    assert!(child.deadline().is_some());
}

#[test]
fn overflowing_budget_keeps_the_parent_deadline() {
    // `now + Duration::MAX` overflows `Instant`; the child must fall
    // back to the parent's (here: absent) deadline instead of minting a
    // bogus one — and must not be spuriously cancelled.
    let free = Cancellation::new();
    let child = free.child_with_deadline(Duration::MAX);
    assert!(!child.is_cancelled());
    assert!(!child.is_expired());

    // With a live parent deadline, the overflowed budget cannot extend it.
    let parent = Cancellation::with_deadline(Duration::from_secs(3600));
    let child = parent.child_with_deadline(Duration::MAX);
    assert_eq!(child.deadline(), parent.deadline());
}

#[test]
fn remaining_budget_of_a_past_deadline_child_is_zero() {
    let parent = Cancellation::new();
    let child = parent.child_with_deadline(Duration::ZERO);
    assert_eq!(child.remaining(), Some(Duration::ZERO));
}

/// A feasible covering model large enough that branch and bound takes a
/// measurable amount of work before proving optimality.
fn feasible_cover_model() -> Model {
    let mut m = Model::minimize();
    let vars: Vec<_> = (0..20).map(|i| m.binary(format!("v{i}"))).collect();
    let mut obj = LinExpr::new();
    let mut cover = LinExpr::new();
    for (i, &v) in vars.iter().enumerate() {
        obj.add_term(f64::from(i as u32 % 6 + 1), v);
        cover.add_term(f64::from(i as u32 % 4 + 1), v);
    }
    m.set_objective(obj);
    m.add_ge("cover", cover, 17.0);
    m
}

#[test]
fn cancelling_mid_search_on_a_feasible_model_never_reports_infeasible() {
    // Sweep cancellation budgets from "trips inside the first LP" to
    // "trips between nodes": whatever point of the search the token
    // expires at, a truncated search must report Feasible/Unknown, never
    // an infeasibility proof. This was the LP-outcome-misreporting bug:
    // a deadline trip inside `solve_lp` surfaced as an abandoned-subtree
    // failure and left `infeasible_proven` in a claimable state.
    let m = feasible_cover_model();
    for micros in [0u64, 50, 200, 800, 3200] {
        let params = SolveParams {
            cancel: Cancellation::with_deadline(Duration::from_micros(micros)),
            time_limit: None,
            ..SolveParams::default()
        };
        let r = m.solve(&params);
        assert_ne!(
            r.status(),
            SolveStatus::Infeasible,
            "cancelled search (budget {micros}µs) claimed an infeasibility proof"
        );
        assert!(
            !r.lp_failures(),
            "cancellation (budget {micros}µs) must not count as an LP failure"
        );
    }
}

#[test]
fn explicit_cancel_token_behaves_like_a_deadline_trip() {
    let m = feasible_cover_model();
    let cancel = Cancellation::new();
    cancel.cancel();
    let params = SolveParams {
        cancel,
        time_limit: None,
        ..SolveParams::default()
    };
    let r = m.solve(&params);
    assert_ne!(r.status(), SolveStatus::Infeasible);
    assert_ne!(r.status(), SolveStatus::Optimal, "nothing was proven");
    assert!(!r.lp_failures());
}
