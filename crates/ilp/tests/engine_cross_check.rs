//! Property tests pinning the sparse revised simplex to the dense
//! baseline engine.
//!
//! The two engines share no linear-algebra code (CSC + LU/eta-file + devex
//! vs dense basis inverse + Dantzig), so agreement on random programs is
//! strong evidence that the sparse core's algebra is right. Warm starts
//! are additionally checked against cold starts: inheriting the parent
//! basis may change the pivot *path*, but never the optimum.

use proptest::prelude::*;
use troy_ilp::{Cmp, LinExpr, LpEngine, Model, SolveParams, SolveStatus, VarId};

/// A randomly generated small integer program.
#[derive(Debug, Clone)]
struct SmallIlp {
    maximize: bool,
    num_vars: usize,
    /// Upper bound per variable (1 = binary; larger = general integer).
    upper: Vec<i32>,
    objective: Vec<i32>,
    /// Constraints as (coefficients, sense, rhs).
    rows: Vec<(Vec<i32>, Cmp, i32)>,
}

fn small_ilp() -> impl Strategy<Value = SmallIlp> {
    (2usize..=6, any::<bool>()).prop_flat_map(|(n, maximize)| {
        let upper = proptest::collection::vec(1i32..=4, n);
        let obj = proptest::collection::vec(-9i32..=9, n);
        let row = (
            proptest::collection::vec(-5i32..=5, n),
            prop_oneof![Just(Cmp::Le), Just(Cmp::Ge), Just(Cmp::Eq)],
            -8i32..=16,
        );
        let rows = proptest::collection::vec(row, 1..=4);
        (upper, obj, rows).prop_map(move |(upper, objective, rows)| SmallIlp {
            maximize,
            num_vars: n,
            upper,
            objective,
            rows,
        })
    })
}

fn build(t: &SmallIlp) -> (Model, Vec<VarId>) {
    let mut m = if t.maximize {
        Model::maximize()
    } else {
        Model::minimize()
    };
    let vars: Vec<VarId> = (0..t.num_vars)
        .map(|i| m.integer(format!("x{i}"), 0.0, f64::from(t.upper[i])))
        .collect();
    let mut obj = LinExpr::new();
    for (&c, &v) in t.objective.iter().zip(&vars) {
        obj.add_term(f64::from(c), v);
    }
    m.set_objective(obj);
    for (i, (coeffs, sense, rhs)) in t.rows.iter().enumerate() {
        let mut e = LinExpr::new();
        for (&c, &v) in coeffs.iter().zip(&vars) {
            e.add_term(f64::from(c), v);
        }
        m.add_constraint(format!("r{i}"), e, *sense, f64::from(*rhs));
    }
    (m, vars)
}

fn solve_with(m: &Model, engine: LpEngine, warm_start: bool) -> troy_ilp::SolveResult {
    m.solve(&SolveParams {
        lp_engine: engine,
        warm_start,
        ..SolveParams::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn sparse_and_dense_engines_agree_on_random_programs(t in small_ilp()) {
        let (model, _) = build(&t);
        let sparse = solve_with(&model, LpEngine::Sparse, true);
        let dense = solve_with(&model, LpEngine::Dense, false);
        prop_assert_eq!(sparse.status(), dense.status(),
            "sparse {:?} vs dense {:?}", sparse.status(), dense.status());
        if sparse.status() == SolveStatus::Optimal {
            let s = sparse.objective().expect("optimal has objective");
            let d = dense.objective().expect("optimal has objective");
            prop_assert!((s - d).abs() < 1e-6,
                "sparse optimum {} vs dense optimum {}", s, d);
            // Both reported assignments must genuinely be feasible.
            prop_assert!(model
                .check_feasible(sparse.values().unwrap(), 1e-6)
                .is_none());
            prop_assert!(model
                .check_feasible(dense.values().unwrap(), 1e-6)
                .is_none());
        }
    }

    #[test]
    fn warm_starts_never_change_the_optimum(t in small_ilp()) {
        let (model, _) = build(&t);
        let warm = solve_with(&model, LpEngine::Sparse, true);
        let cold = solve_with(&model, LpEngine::Sparse, false);
        prop_assert_eq!(warm.status(), cold.status());
        if warm.status() == SolveStatus::Optimal {
            let w = warm.objective().expect("optimal");
            let c = cold.objective().expect("optimal");
            prop_assert!((w - c).abs() < 1e-6,
                "warm-start optimum {} vs cold-start optimum {}", w, c);
        }
    }

    #[test]
    fn warm_starts_are_deterministic(t in small_ilp()) {
        // Two identical warm-started solves must agree exactly — the
        // engine is single-threaded IEEE arithmetic, so node counts and
        // iteration counts are reproducible (this is what lets CI gate on
        // iteration-count regressions).
        let (model, _) = build(&t);
        let a = solve_with(&model, LpEngine::Sparse, true);
        let b = solve_with(&model, LpEngine::Sparse, true);
        prop_assert_eq!(a.status(), b.status());
        prop_assert_eq!(a.nodes(), b.nodes());
        prop_assert_eq!(a.lp_iterations(), b.lp_iterations());
        prop_assert_eq!(a.objective(), b.objective());
    }
}
