//! The chaos property suite: the supervisor's contract under injected
//! faults.
//!
//! For **any** seeded fault schedule — solver panics, artificial stalls,
//! spurious cancellations — a supervised run must (a) terminate within
//! its deadline bound plus the documented grace slack, (b) return either
//! a validator-clean implementation with an honest cost or a typed,
//! actionable error, and (c) never let a panic escape. A final test
//! checks the storage-side fault family: a chaos-corrupted result cache
//! quarantines damaged entries instead of serving them.

use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;
use std::time::{Duration, Instant};

use troy_dfg::benchmarks;
use troy_portfolio::{cache_key, race, synthesize_isolated, Backend, ResultCache};
use troy_resilience::{
    supervise, AttemptOutcome, Chaos, Supervised, SupervisorConfig, SupervisorError,
    CHAOS_PANIC_MARKER, GRACE_BUDGET, LADDER,
};
use troyhls::{validate, Catalog, Mode, SolveOptions, SynthesisProblem};

/// How many fault schedules the sweep covers (acceptance floor: 100).
const SWEEP_SEEDS: u64 = 128;

/// Installs a panic hook that silences *injected* panics (their payloads
/// carry [`CHAOS_PANIC_MARKER`]) while forwarding real ones, so a green
/// chaos run has a readable log. Process-global, hence `Once`.
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains(CHAOS_PANIC_MARKER))
                || info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|s| s.contains(CHAOS_PANIC_MARKER));
            if !injected {
                previous(info);
            }
        }));
    });
}

/// The sweep's workload: `polynom` in detection mode at the critical
/// path — small enough that every rung solves it in milliseconds, so the
/// 128-seed sweep exercises fault handling, not solver runtime.
fn tiny() -> SynthesisProblem {
    SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
        .mode(Mode::DetectionOnly)
        .build()
        .expect("well-formed")
}

/// The paper's Figure 5 instance (polynom, λ_det=4, λ_rec=3, area ≤
/// 22000): minimum license cost $4160.
fn fig5() -> SynthesisProblem {
    SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
        .mode(Mode::DetectionRecovery)
        .detection_latency(4)
        .recovery_latency(3)
        .area_limit(22_000)
        .build()
        .expect("figure 5 instance is well-formed")
}

fn sweep_config() -> SupervisorConfig {
    SupervisorConfig {
        deadline: Duration::from_secs(2),
        ..SupervisorConfig::default()
    }
}

/// Checks the Ok side of the contract: the design is validator-clean for
/// the (possibly relaxed) problem the supervisor reports, and the stated
/// cost is the recomputed license cost — never silently wrong.
fn assert_sound(sup: &Supervised, seed: u64) {
    assert!(
        validate(&sup.problem, &sup.synthesis.implementation).is_empty(),
        "seed {seed}: returned design fails validation\n{}",
        sup.degradation.summary()
    );
    assert_eq!(
        sup.synthesis.implementation.license_cost(&sup.problem),
        sup.synthesis.cost,
        "seed {seed}: reported cost disagrees with the recomputed license cost"
    );
}

/// The core property: every fault schedule in the sweep terminates in
/// bound and yields a valid implementation or a typed error — zero
/// escaped panics, zero silently wrong costs.
#[test]
fn every_fault_schedule_yields_valid_or_typed_error() {
    quiet_injected_panics();
    let problem = tiny();
    let config = sweep_config();
    // The deadline bound: the run may legitimately spend the deadline,
    // the grace pass, and bounded slop (final solver wind-down, backoff
    // sleeps clamped to the remaining budget, stalls ≤ 16 ms each).
    let bound = config.deadline + GRACE_BUDGET + Duration::from_secs(2);

    let (mut oks, mut errs, mut faulted, mut demotions, mut retries) = (0u64, 0u64, 0u64, 0, 0);
    for seed in 0..SWEEP_SEEDS {
        let chaos = Chaos::seeded(seed);
        let t0 = Instant::now();
        let outcome =
            panic::catch_unwind(AssertUnwindSafe(|| supervise(&problem, &config, &chaos)));
        let elapsed = t0.elapsed();
        let result: Result<Supervised, SupervisorError> =
            outcome.unwrap_or_else(|_| panic!("seed {seed}: a panic escaped the supervisor"));
        assert!(
            elapsed <= bound,
            "seed {seed}: run took {elapsed:?}, bound is {bound:?}"
        );
        match result {
            Ok(sup) => {
                assert_sound(&sup, seed);
                demotions += sup.degradation.demoted.len();
                retries += sup.degradation.retries();
                if sup.degradation.attempts() > 1 || sup.degraded() {
                    faulted += 1;
                }
                oks += 1;
            }
            Err(err) => {
                // Typed and actionable: the error names its category and
                // renders a non-empty hint, and carries the full report.
                assert!(!err.to_string().is_empty(), "seed {seed}");
                assert!(
                    !err.degradation.rungs.is_empty(),
                    "seed {seed}: error without a degradation report"
                );
                demotions += err.degradation.demoted.len();
                retries += err.degradation.retries();
                faulted += 1;
                errs += 1;
            }
        }
    }

    // The sweep must have *exercised* the machinery, not dodged it: the
    // tiny problem is feasible, so most schedules should still produce a
    // design, and the ~45% fault rate must have left visible scars.
    assert!(oks > 0, "no schedule produced a design ({errs} errors)");
    // Stalls leave no scar in the report (the attempt still succeeds),
    // so only panic/cancel schedules are observable here: ~30% of seeds.
    assert!(
        faulted > SWEEP_SEEDS / 8,
        "only {faulted}/{SWEEP_SEEDS} schedules showed fault handling"
    );
    assert!(demotions > 0, "no schedule demoted a panicking back end");
    assert!(retries > 0, "no schedule retried a transient fault");
}

/// One seed denotes one fault story: replaying a seed reproduces the
/// exact same sequence of rungs, attempts and outcomes (wall-clock
/// fields aside), regardless of machine load ordering.
#[test]
fn same_seed_replays_the_same_fault_story() {
    quiet_injected_panics();
    let problem = tiny();
    let config = sweep_config();

    // Project a run onto its timing-free skeleton.
    fn skeleton(
        result: &Result<Supervised, SupervisorError>,
    ) -> Vec<(String, usize, bool, Vec<&'static str>)> {
        let degradation = match result {
            Ok(sup) => &sup.degradation,
            Err(err) => &err.degradation,
        };
        degradation
            .rungs
            .iter()
            .map(|r| {
                (
                    r.backend.to_string(),
                    r.relaxation,
                    r.skipped,
                    r.attempts.iter().map(|a| a.outcome.tag()).collect(),
                )
            })
            .collect()
    }

    for seed in [3, 11, 42, 97] {
        let chaos = Chaos::seeded(seed);
        let first = supervise(&problem, &config, &chaos);
        let second = supervise(&problem, &config, &chaos);
        assert_eq!(
            skeleton(&first),
            skeleton(&second),
            "seed {seed}: replay diverged"
        );
    }
}

/// Injected panics carry the chaos marker and surface as `Panicked`
/// outcomes with demotion — the firewall works and attribution is clear.
#[test]
fn injected_panics_are_marked_and_demote_the_backend() {
    quiet_injected_panics();
    let problem = tiny();
    let config = sweep_config();
    let mut seen = false;
    for seed in 0..SWEEP_SEEDS {
        let chaos = Chaos::seeded(seed);
        let degradation = match supervise(&problem, &config, &chaos) {
            Ok(sup) => sup.degradation,
            Err(err) => err.degradation,
        };
        for rung in &degradation.rungs {
            for attempt in &rung.attempts {
                if let AttemptOutcome::Panicked(msg) = &attempt.outcome {
                    assert!(
                        msg.contains(CHAOS_PANIC_MARKER),
                        "seed {seed}: unmarked panic {msg:?}"
                    );
                    assert!(
                        degradation.demoted.iter().any(|(b, _)| *b == rung.backend),
                        "seed {seed}: panicking {} was not demoted",
                        rung.backend
                    );
                    seen = true;
                }
            }
        }
    }
    assert!(seen, "no injected panic in {SWEEP_SEEDS} schedules");
}

/// With chaos off, the supervised pipeline still reproduces the paper's
/// Figure 5 oracle — and every rung of the ladder can carry the problem
/// on its own: the provers to the proven $4160 optimum, the heuristics
/// to a validator-clean design no cheaper than it.
#[test]
fn chaos_off_reproduces_fig5_through_the_full_ladder() {
    let problem = fig5();
    let config = SupervisorConfig {
        // A modest deadline keeps the ILP's slice small; being an
        // anytime solver it still lands on the $4160 optimum (best
        // effort) well inside it.
        deadline: Duration::from_secs(8),
        ..SupervisorConfig::default()
    };
    let sup = supervise(&problem, &config, &Chaos::disabled()).expect("figure 5 is feasible");
    assert_eq!(sup.synthesis.cost, 4160);
    assert_eq!(sup.backend, LADDER[0]);
    assert!(!sup.degraded(), "{}", sup.degradation.summary());

    for backend in LADDER {
        let s = synthesize_isolated(backend, &problem, &SolveOptions::quick())
            .unwrap_or_else(|e| panic!("rung {backend} failed on figure 5: {e}"));
        assert!(
            validate(&problem, &s.implementation).is_empty(),
            "rung {backend} returned an invalid design"
        );
        if backend.can_prove() {
            assert_eq!(s.cost, 4160, "prover rung {backend} missed the optimum");
        } else {
            assert!(s.cost >= 4160, "rung {backend} under-reported cost");
        }
    }
}

/// The storage fault family: after chaos corrupts an on-disk result
/// cache (truncation, bit flips, partial JSON), lookups serve only
/// misses or fully valid entries and quarantine the damage — garbage is
/// never returned.
#[test]
fn corrupted_cache_is_quarantined_never_served() {
    let dir = std::env::temp_dir().join(format!("troy-chaos-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let problem = fig5();
    let options = SolveOptions::quick();
    let solved = race(&problem, &options, 1).expect("figure 5 is feasible");

    // Populate several distinct keys so each corruption mode gets a shot.
    let cache = ResultCache::on_disk(&dir).expect("create cache dir");
    let keys: Vec<_> = (0..12)
        .map(|i| cache_key(&problem, &format!("chaos-{i}"), &options))
        .collect();
    for key in &keys {
        cache.store(key, &solved);
    }

    for seed in 0..16 {
        let damaged = Chaos::seeded(seed).corrupt_cache_dir(&dir);
        // Fresh handle: the in-memory layer is cold, so the disk bytes
        // (including the damage) are what lookups actually read.
        let fresh = ResultCache::on_disk(&dir).expect("reopen cache dir");
        let mut served = 0;
        for key in &keys {
            if let Some(hit) = fresh.lookup(key, &problem) {
                assert_eq!(hit.synthesis.cost, 4160, "seed {seed}: wrong cost served");
                assert!(
                    validate(&problem, &hit.synthesis.implementation).is_empty(),
                    "seed {seed}: invalid design served"
                );
                served += 1;
            }
        }
        assert!(
            served + fresh.quarantined() >= keys.len().saturating_sub(damaged),
            "seed {seed}: entries vanished without quarantine"
        );
        // Heal for the next round: quarantined files were renamed away;
        // re-store every key through the atomic path.
        for key in &keys {
            fresh.store(key, &solved);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A deliberately hostile run — every rung's first attempts spoiled by a
/// high-fault seed and a short deadline — still ends in bound with a
/// valid design or a typed error, and `--no-degrade` semantics hold: no
/// rung below the primary ever runs.
#[test]
fn no_degrade_never_descends_even_under_chaos() {
    quiet_injected_panics();
    let problem = tiny();
    let config = SupervisorConfig {
        degrade: false,
        deadline: Duration::from_secs(2),
        ..SupervisorConfig::default()
    };
    for seed in 0..32 {
        let chaos = Chaos::seeded(seed);
        let result = supervise(&problem, &config, &chaos);
        let degradation = match &result {
            Ok(sup) => {
                assert_eq!(sup.backend, Backend::Ilp, "seed {seed}");
                assert_eq!(sup.relaxation, 0, "seed {seed}");
                assert!(!sup.degradation.grace, "seed {seed}");
                &sup.degradation
            }
            Err(err) => &err.degradation,
        };
        for rung in &degradation.rungs {
            assert!(
                rung.skipped || rung.backend == Backend::Ilp,
                "seed {seed}: rung {} ran under --no-degrade",
                rung.backend
            );
        }
    }
}
