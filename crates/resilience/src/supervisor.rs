//! The resilient synthesis supervisor.
//!
//! [`supervise`] wraps solver invocations in the same graceful-degradation
//! discipline the paper demands of the synthesized hardware: a deadline
//! is enforced through the [`Cancellation`] chain, transient faults are
//! retried with jittered exponential backoff, a panicking back end is
//! caught and demoted instead of aborting the run, and when a rung fails
//! outright the supervisor descends a fixed **degradation ladder** —
//! ILP → exact → annealing → greedy, then constraint relaxation (latency
//! +1 per step up to a cap) — so the caller always receives the best
//! implementation the machine could produce, annotated with a structured
//! [`Degradation`] report saying exactly which rungs ran and why.
//!
//! The invariant the chaos suite pins down: for *any* injected fault
//! schedule, [`supervise`] terminates within its deadline bound (plus the
//! documented grace slack) and returns either a validator-clean
//! implementation or a typed [`SupervisorError`] — never a panic, never a
//! silently wrong cost.

use std::fmt;
use std::time::{Duration, Instant};

use troy_ilp::Cancellation;
use troy_portfolio::{synthesize_isolated, Backend};
use troyhls::{SolveOptions, Synthesis, SynthesisError, SynthesisProblem};

use crate::backoff::Backoff;
use crate::chaos::Chaos;

/// The degradation ladder, best rung first: provers before heuristics,
/// the ILP (the paper's own engine) as the primary.
pub const LADDER: [Backend; 4] = [
    Backend::Ilp,
    Backend::Exact,
    Backend::Annealing,
    Backend::Greedy,
];

/// Budget of the final grace pass (fresh token, greedy): the bounded
/// slack past the deadline a supervised run may spend to keep the
/// promise that feasible problems yield *some* valid design.
pub const GRACE_BUDGET: Duration = Duration::from_secs(1);
const GRACE_NODES: usize = 50_000;

/// Floor for a single attempt's deadline slice; below this a solver
/// cannot do useful work and the slice only adds scheduling noise.
const MIN_SLICE: Duration = Duration::from_millis(10);

/// How the supervisor runs.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Overall wall-clock budget across every rung, retry and relaxation.
    pub deadline: Duration,
    /// Extra attempts per rung for *transient* faults (spurious
    /// cancellation); deterministic failures descend immediately.
    pub max_retries: usize,
    /// `false` pins the run to the primary rung: no ladder descent, no
    /// relaxation, no grace pass — first failure is the answer.
    pub degrade: bool,
    /// Latency relaxation cap: constraints are retried with both phase
    /// latencies increased by `1..=max_relaxation` cycles.
    pub max_relaxation: usize,
    /// Retry backoff policy (deterministic jitter).
    pub backoff: Backoff,
    /// Back ends excluded for the whole run before it starts — the hook
    /// the service layer's circuit breakers use to shed a flapping rung
    /// without burning its retry budget. Excluded rungs appear in the
    /// [`Degradation`] report as skipped, so a run that had to bypass its
    /// primary rung still reads as degraded.
    pub disabled: Vec<Backend>,
    /// Base solver options; `cancel` is the parent of every attempt
    /// token, `node_limit` is inherited per attempt, and `time_limit` is
    /// superseded by the supervisor's deadline slices.
    pub options: SolveOptions,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            deadline: Duration::from_secs(60),
            max_retries: 2,
            degrade: true,
            max_relaxation: 2,
            backoff: Backoff::default(),
            disabled: Vec::new(),
            options: SolveOptions::default(),
        }
    }
}

/// How one attempt of one rung ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// A validator-clean design of this cost (`proven` per the backend).
    Success {
        /// License cost of the design.
        cost: u64,
        /// Whether the backend proved it optimal.
        proven: bool,
    },
    /// The back end panicked (payload message); the backend is demoted.
    Panicked(String),
    /// The attempt's token was cancelled while the run had time left —
    /// the transient class (racing sibling, chaos); retried with backoff.
    SpuriousCancel,
    /// The attempt's deadline slice expired with no design.
    Timeout,
    /// The back end reported infeasibility.
    Infeasible,
    /// The back end returned a design that failed re-validation; the
    /// backend is demoted (a miscosting solver cannot be trusted again).
    InvalidDesign,
    /// Any other typed failure.
    Failed(String),
}

impl AttemptOutcome {
    /// Short stable tag used in reports.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            AttemptOutcome::Success { .. } => "ok",
            AttemptOutcome::Panicked(_) => "panicked",
            AttemptOutcome::SpuriousCancel => "cancelled",
            AttemptOutcome::Timeout => "timeout",
            AttemptOutcome::Infeasible => "infeasible",
            AttemptOutcome::InvalidDesign => "invalid-design",
            AttemptOutcome::Failed(_) => "failed",
        }
    }
}

/// One attempt of one rung.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attempt {
    /// 0-based attempt number within the rung.
    pub attempt: usize,
    /// How it ended.
    pub outcome: AttemptOutcome,
    /// Wall-clock time the attempt took.
    pub elapsed: Duration,
    /// Backoff slept *after* this attempt, when it was retried.
    pub backoff: Option<Duration>,
}

/// Everything that happened on one rung of the ladder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RungReport {
    /// The back end this rung ran.
    pub backend: Backend,
    /// Latency relaxation (cycles added to both phases) in effect.
    pub relaxation: usize,
    /// `true` when the rung was skipped because the backend had been
    /// demoted by an earlier panic or invalid design.
    pub skipped: bool,
    /// The attempts, in order.
    pub attempts: Vec<Attempt>,
}

/// Structured account of a supervised run: which rungs ran, which faults
/// occurred, what was demoted, how far constraints were relaxed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Degradation {
    /// Rung reports in execution order (including skipped rungs).
    pub rungs: Vec<RungReport>,
    /// Back ends demoted for the rest of the run, with the reason.
    pub demoted: Vec<(Backend, String)>,
    /// `true` when the final grace pass produced the result.
    pub grace: bool,
}

impl Degradation {
    /// Total attempts that actually ran.
    #[must_use]
    pub fn attempts(&self) -> usize {
        self.rungs.iter().map(|r| r.attempts.len()).sum()
    }

    /// Total retries (attempts beyond the first) across all rungs.
    #[must_use]
    pub fn retries(&self) -> usize {
        self.rungs
            .iter()
            .map(|r| r.attempts.len().saturating_sub(1))
            .sum()
    }

    /// Human-readable multi-line summary, one line per rung/attempt.
    #[must_use]
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for rung in &self.rungs {
            let relax = if rung.relaxation == 0 {
                String::new()
            } else {
                format!(" (latency +{})", rung.relaxation)
            };
            if rung.skipped {
                let _ = writeln!(s, "  rung {}{relax}: skipped (demoted)", rung.backend);
                continue;
            }
            for a in &rung.attempts {
                let detail = match &a.outcome {
                    AttemptOutcome::Success { cost, proven } => {
                        format!(
                            "${cost}{}",
                            if *proven {
                                " (proven)"
                            } else {
                                " (best effort)"
                            }
                        )
                    }
                    AttemptOutcome::Panicked(msg) | AttemptOutcome::Failed(msg) => msg.clone(),
                    _ => String::new(),
                };
                let backoff = a
                    .backoff
                    .map(|d| format!(", retried after {d:?}"))
                    .unwrap_or_default();
                let _ = writeln!(
                    s,
                    "  rung {}{relax} attempt {}: {} {detail}{backoff}",
                    rung.backend,
                    a.attempt + 1,
                    a.outcome.tag(),
                );
            }
        }
        if self.grace {
            let _ = writeln!(s, "  grace pass: greedy with a fresh token");
        }
        s
    }
}

/// The supervised result: a validated design plus its provenance.
#[derive(Debug, Clone)]
pub struct Supervised {
    /// The winning design (validator-clean for [`Supervised::problem`]).
    pub synthesis: Synthesis,
    /// The rung that produced it.
    pub backend: Backend,
    /// The problem the design actually satisfies: the input problem, or
    /// its latency-relaxed variant when [`Supervised::relaxation`] > 0.
    pub problem: SynthesisProblem,
    /// Cycles of latency relaxation applied (0 = original constraints).
    pub relaxation: usize,
    /// Full rung/attempt/fault account.
    pub degradation: Degradation,
    /// Wall-clock time of the whole supervised run.
    pub elapsed: Duration,
}

impl Supervised {
    /// `true` when the result is *degraded*: it did not come from the
    /// primary rung under the original constraints — the CLI's exit-3
    /// condition. Retries that still won on the primary rung are not
    /// degradation (the result is exactly what was asked for).
    #[must_use]
    pub fn degraded(&self) -> bool {
        self.relaxation > 0 || self.backend != LADDER[0] || self.degradation.grace
    }
}

/// Why a supervised run produced no design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SupervisorErrorKind {
    /// A proving rung showed the constraints unsatisfiable, still at
    /// `relaxation_steps` cycles of latency relaxation (the cap, unless
    /// degradation was disabled).
    Infeasible {
        /// Relaxation in effect when infeasibility was last proven.
        relaxation_steps: usize,
    },
    /// The deadline expired before any rung produced a design (and the
    /// grace pass, when allowed, found nothing either).
    DeadlineExhausted {
        /// The configured deadline.
        deadline: Duration,
    },
    /// Every rung failed or was demoted with budget to spare.
    Exhausted,
}

/// Typed, actionable failure of a supervised run, carrying the full
/// [`Degradation`] report for diagnosis.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisorError {
    /// What category of failure this is.
    pub kind: SupervisorErrorKind,
    /// Everything that was tried before giving up.
    pub degradation: Degradation,
}

impl fmt::Display for SupervisorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            SupervisorErrorKind::Infeasible { relaxation_steps } => write!(
                f,
                "no design satisfies the constraints (proven, after {relaxation_steps} \
                 cycle(s) of latency relaxation); relax --lambda-det/--lambda-rec, raise \
                 --area, or extend the catalog"
            ),
            SupervisorErrorKind::DeadlineExhausted { deadline } => write!(
                f,
                "deadline of {deadline:?} exhausted before any rung produced a design; \
                 raise --deadline or lower the problem size"
            ),
            SupervisorErrorKind::Exhausted => write!(
                f,
                "every ladder rung failed; see the degradation report (a panicking or \
                 miscosting back end is demoted for the whole run)"
            ),
        }
    }
}

impl std::error::Error for SupervisorError {}

/// Builds the latency-relaxed variant of `problem` (+`step` cycles on
/// both phases). `None` only if the relaxed problem fails validation,
/// which loosening latencies cannot cause in practice.
fn relaxed(problem: &SynthesisProblem, step: usize) -> Option<SynthesisProblem> {
    let mut builder = SynthesisProblem::builder(problem.dfg().clone(), problem.catalog().clone())
        .mode(problem.mode())
        .detection_latency(problem.detection_latency() + step)
        .recovery_latency(problem.recovery_latency() + step)
        .area_limit(problem.area_limit());
    for &(a, b) in problem.related_pairs() {
        builder = builder.related_pair(a, b);
    }
    builder.build().ok()
}

/// Re-validates a back end's claimed design: validator-clean and the
/// reported cost equal to the recomputed license cost.
fn is_sound(problem: &SynthesisProblem, s: &Synthesis) -> bool {
    troyhls::validate(problem, &s.implementation).is_empty()
        && s.implementation.license_cost(problem) == s.cost
}

/// What a finished rung tells the ladder driver to do next.
enum RungVerdict {
    Won(Synthesis),
    Descend,
    ProvenInfeasible,
    OutOfTime,
}

/// Runs the full supervision protocol on `problem`.
///
/// Per relaxation step (0, then +1 latency up to the cap while
/// degradation is allowed), each non-demoted ladder rung gets a slice of
/// the remaining deadline, enforced as a [`Cancellation::child_with_deadline`]
/// token chained under `config.options.cancel`; within a rung, transient
/// faults retry up to `config.max_retries` times with jittered
/// exponential backoff. A panicking or miscosting back end is demoted for
/// the rest of the run. If the deadline expires with no design and
/// degradation is allowed, one bounded greedy *grace pass* (fresh token,
/// [`GRACE_BUDGET`]) still tries for a best-effort design.
///
/// Chaos faults from `chaos` (when enabled) are injected at the attempt
/// boundaries; pass [`Chaos::disabled`] for production behavior.
///
/// # Errors
///
/// A [`SupervisorError`] carrying the degradation report: proven
/// infeasibility, deadline exhaustion, or every rung failing.
pub fn supervise(
    problem: &SynthesisProblem,
    config: &SupervisorConfig,
    chaos: &Chaos,
) -> Result<Supervised, SupervisorError> {
    let t0 = Instant::now();
    let root = config.options.cancel.child_with_deadline(config.deadline);
    let mut degradation = Degradation::default();
    let mut demoted: Vec<Backend> = config.disabled.clone();
    let mut out_of_time = false;
    let max_relaxation = if config.degrade {
        config.max_relaxation
    } else {
        0
    };

    'relax: for step in 0..=max_relaxation {
        let variant = if step == 0 {
            problem.clone()
        } else {
            match relaxed(problem, step) {
                Some(p) => p,
                None => continue,
            }
        };
        for (rung_no, &backend) in LADDER.iter().enumerate() {
            if demoted.contains(&backend) {
                degradation.rungs.push(RungReport {
                    backend,
                    relaxation: step,
                    skipped: true,
                    attempts: Vec::new(),
                });
                continue;
            }
            let rungs_left = LADDER[rung_no..]
                .iter()
                .filter(|b| !demoted.contains(b))
                .count();
            let verdict = run_rung(
                backend,
                step,
                rungs_left,
                &variant,
                config,
                chaos,
                &root,
                t0,
                &mut degradation,
            );
            match verdict {
                RungVerdict::Won(synthesis) => {
                    return Ok(Supervised {
                        synthesis,
                        backend,
                        problem: variant,
                        relaxation: step,
                        degradation,
                        elapsed: t0.elapsed(),
                    });
                }
                RungVerdict::Descend => {
                    if !config.degrade {
                        return Err(SupervisorError {
                            kind: SupervisorErrorKind::Exhausted,
                            degradation,
                        });
                    }
                }
                RungVerdict::ProvenInfeasible => {
                    if step == max_relaxation {
                        return Err(SupervisorError {
                            kind: SupervisorErrorKind::Infeasible {
                                relaxation_steps: step,
                            },
                            degradation,
                        });
                    }
                    continue 'relax;
                }
                RungVerdict::OutOfTime => {
                    out_of_time = true;
                    break 'relax;
                }
            }
            // Demotions recorded inside run_rung; refresh the local view,
            // keeping the caller's pre-disabled back ends excluded.
            demoted.clone_from(&config.disabled);
            demoted.extend(degradation.demoted.iter().map(|(b, _)| *b));
        }
    }

    // Grace pass: the ladder produced nothing within the deadline. One
    // bounded greedy run on the original constraints with a *fresh*
    // token keeps the promise that feasible problems yield some design.
    if config.degrade {
        let grace = SolveOptions {
            time_limit: GRACE_BUDGET,
            node_limit: config.options.node_limit.min(GRACE_NODES),
            cancel: Cancellation::with_deadline(GRACE_BUDGET),
            ..config.options.clone()
        };
        if let Ok(s) = synthesize_isolated(Backend::Greedy, problem, &grace) {
            if is_sound(problem, &s) {
                degradation.grace = true;
                return Ok(Supervised {
                    synthesis: Synthesis {
                        proven_optimal: false,
                        ..s
                    },
                    backend: Backend::Greedy,
                    problem: problem.clone(),
                    relaxation: 0,
                    degradation,
                    elapsed: t0.elapsed(),
                });
            }
        }
    }

    let kind = if out_of_time {
        SupervisorErrorKind::DeadlineExhausted {
            deadline: config.deadline,
        }
    } else {
        SupervisorErrorKind::Exhausted
    };
    Err(SupervisorError { kind, degradation })
}

/// Runs one rung (all its attempts) and records it into `degradation`.
#[allow(clippy::too_many_arguments)]
fn run_rung(
    backend: Backend,
    relaxation: usize,
    rungs_left: usize,
    problem: &SynthesisProblem,
    config: &SupervisorConfig,
    chaos: &Chaos,
    root: &Cancellation,
    t0: Instant,
    degradation: &mut Degradation,
) -> RungVerdict {
    let mut report = RungReport {
        backend,
        relaxation,
        skipped: false,
        attempts: Vec::new(),
    };
    let rung_index = relaxation * LADDER.len() + backend.priority();
    let mut verdict = RungVerdict::Descend;

    for attempt in 0..=config.max_retries {
        if root.is_expired() {
            verdict = RungVerdict::OutOfTime;
            break;
        }
        // This attempt's slice: an even share of the remaining deadline
        // over the rungs still ahead (including this one), floored so a
        // slice is never uselessly small, and never past the root
        // deadline (the child token clamps to the earlier bound).
        let remaining = config.deadline.saturating_sub(t0.elapsed());
        let slice = (remaining / rungs_left.max(1) as u32).max(MIN_SLICE);
        let token = root.child_with_deadline(slice);
        let attempt_options = SolveOptions {
            time_limit: slice,
            node_limit: config.options.node_limit,
            cancel: token.clone(),
            ..config.options.clone()
        };

        let fault = chaos.fault_for_attempt(backend, relaxation, attempt);
        chaos.apply_before_attempt(fault, &token);

        let a0 = Instant::now();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            chaos.maybe_panic(fault, backend);
            synthesize_isolated(backend, problem, &attempt_options)
        }))
        .unwrap_or_else(|payload| {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            Err(SynthesisError::Panicked(msg))
        });
        let elapsed = a0.elapsed();

        let (outcome, next) = classify(backend, result, problem, &token, root);
        let retryable = matches!(outcome, AttemptOutcome::SpuriousCancel);
        let will_retry = retryable && attempt < config.max_retries;
        let backoff = will_retry.then(|| {
            let delay = config
                .backoff
                .delay(rung_index, attempt + 1)
                .min(config.deadline.saturating_sub(t0.elapsed()));
            std::thread::sleep(delay);
            delay
        });
        report.attempts.push(Attempt {
            attempt,
            outcome: outcome.clone(),
            elapsed,
            backoff,
        });
        match &outcome {
            AttemptOutcome::Panicked(msg) => {
                degradation.demoted.push((backend, msg.clone()));
            }
            AttemptOutcome::InvalidDesign => {
                degradation.demoted.push((
                    backend,
                    "returned an invalid or miscosted design".to_owned(),
                ));
            }
            _ => {}
        }
        if let Some(v) = next {
            verdict = v;
            break;
        }
        if !will_retry {
            break;
        }
    }

    degradation.rungs.push(report);
    verdict
}

/// Classifies one attempt's raw result into an [`AttemptOutcome`] and,
/// when the rung is decided, the rung verdict (`None` = retry).
fn classify(
    backend: Backend,
    result: Result<Synthesis, SynthesisError>,
    problem: &SynthesisProblem,
    token: &Cancellation,
    root: &Cancellation,
) -> (AttemptOutcome, Option<RungVerdict>) {
    match result {
        Ok(s) if is_sound(problem, &s) => (
            AttemptOutcome::Success {
                cost: s.cost,
                proven: s.proven_optimal,
            },
            Some(RungVerdict::Won(s)),
        ),
        Ok(_) => (AttemptOutcome::InvalidDesign, Some(RungVerdict::Descend)),
        Err(SynthesisError::Panicked(msg)) => {
            (AttemptOutcome::Panicked(msg), Some(RungVerdict::Descend))
        }
        Err(SynthesisError::Infeasible) if backend.can_prove() => (
            AttemptOutcome::Infeasible,
            Some(RungVerdict::ProvenInfeasible),
        ),
        Err(SynthesisError::Infeasible) => (AttemptOutcome::Infeasible, Some(RungVerdict::Descend)),
        Err(SynthesisError::BudgetExhausted) => {
            if token.is_cancelled() && !root.is_expired() {
                // Someone cancelled this attempt's own token while the
                // run still has budget: the transient class — retry.
                (AttemptOutcome::SpuriousCancel, None)
            } else if root.is_expired() {
                (AttemptOutcome::Timeout, Some(RungVerdict::OutOfTime))
            } else {
                (AttemptOutcome::Timeout, Some(RungVerdict::Descend))
            }
        }
        Err(other) => (
            AttemptOutcome::Failed(other.to_string()),
            Some(RungVerdict::Descend),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use troy_dfg::benchmarks;
    use troyhls::{Catalog, Mode};

    fn tiny_problem() -> SynthesisProblem {
        let dfg = benchmarks::polynom();
        let cp = dfg.critical_path_len();
        SynthesisProblem::builder(dfg, Catalog::table1())
            .mode(Mode::DetectionOnly)
            .detection_latency(cp + 1)
            .build()
            .expect("well-formed")
    }

    #[test]
    fn clean_run_wins_on_the_primary_rung_not_degraded() {
        let sup = supervise(
            &tiny_problem(),
            &SupervisorConfig::default(),
            &Chaos::disabled(),
        )
        .expect("feasible");
        assert_eq!(sup.backend, Backend::Ilp);
        assert_eq!(sup.relaxation, 0);
        assert!(!sup.degraded());
        assert!(is_sound(&sup.problem, &sup.synthesis));
        assert_eq!(sup.degradation.attempts(), 1);
        assert_eq!(sup.degradation.retries(), 0);
        assert!(!sup.degradation.grace);
    }

    #[test]
    fn disabled_primary_rung_is_skipped_and_the_run_reads_as_degraded() {
        // A circuit breaker opening on the ILP rung pre-disables it; the
        // run must fall through to the next rung, report the skip, and
        // count as degraded without the breaker ever re-closing mid-run.
        let config = SupervisorConfig {
            disabled: vec![Backend::Ilp],
            ..SupervisorConfig::default()
        };
        let sup = supervise(&tiny_problem(), &config, &Chaos::disabled()).expect("feasible");
        assert_ne!(sup.backend, Backend::Ilp);
        assert!(sup.degraded(), "bypassing the primary rung is degradation");
        assert!(is_sound(&sup.problem, &sup.synthesis));
        let ilp_rung = sup
            .degradation
            .rungs
            .iter()
            .find(|r| r.backend == Backend::Ilp)
            .expect("ilp rung reported");
        assert!(ilp_rung.skipped);
        assert!(ilp_rung.attempts.is_empty());
    }

    #[test]
    fn all_rungs_disabled_is_a_typed_exhaustion() {
        let config = SupervisorConfig {
            disabled: LADDER.to_vec(),
            degrade: false, // no grace pass: exhaustion must surface
            ..SupervisorConfig::default()
        };
        let err = supervise(&tiny_problem(), &config, &Chaos::disabled()).unwrap_err();
        assert_eq!(err.kind, SupervisorErrorKind::Exhausted);
        assert!(err.degradation.rungs.iter().all(|r| r.skipped));
    }

    #[test]
    fn expired_parent_token_yields_a_typed_error_or_grace_design() {
        // The parent token is already cancelled: every slice dies at its
        // first poll; only the grace pass (fresh token) can produce a
        // design, and disabling degradation removes even that.
        let cancelled = Cancellation::new();
        cancelled.cancel();
        let config = SupervisorConfig {
            deadline: Duration::from_millis(50),
            degrade: false,
            options: SolveOptions {
                cancel: cancelled.clone(),
                ..SolveOptions::quick()
            },
            ..SupervisorConfig::default()
        };
        let err = supervise(&tiny_problem(), &config, &Chaos::disabled()).unwrap_err();
        assert!(
            matches!(
                err.kind,
                SupervisorErrorKind::Exhausted | SupervisorErrorKind::DeadlineExhausted { .. }
            ),
            "{err}"
        );
        assert!(!err.degradation.rungs.is_empty());

        // With degradation allowed, the grace pass still finds a design.
        let config = SupervisorConfig {
            degrade: true,
            ..config
        };
        let sup = supervise(&tiny_problem(), &config, &Chaos::disabled()).expect("grace");
        assert!(sup.degradation.grace);
        assert!(sup.degraded());
        assert!(!sup.synthesis.proven_optimal);
        assert!(is_sound(&sup.problem, &sup.synthesis));
    }

    #[test]
    fn no_degrade_stops_at_the_first_failed_rung() {
        let cancelled = Cancellation::new();
        cancelled.cancel();
        let config = SupervisorConfig {
            deadline: Duration::from_millis(50),
            degrade: false,
            max_retries: 0,
            options: SolveOptions {
                cancel: cancelled,
                ..SolveOptions::quick()
            },
            ..SupervisorConfig::default()
        };
        let err = supervise(&tiny_problem(), &config, &Chaos::disabled()).unwrap_err();
        let ran: Vec<&RungReport> = err
            .degradation
            .rungs
            .iter()
            .filter(|r| !r.skipped)
            .collect();
        assert_eq!(ran.len(), 1, "{:?}", err.degradation);
        assert_eq!(ran[0].backend, LADDER[0]);
    }

    #[test]
    fn relaxation_recovers_an_area_infeasible_latency() {
        // polynom/table1/detection at the critical path with a tight area
        // cap: the forced concurrency makes λ=cp infeasible, λ+1 feasible
        // — the exact shape the relaxation rung exists for. The bound is
        // found empirically: pick the tightest area that λ=cp proves
        // infeasible but λ+1 solves.
        let dfg = benchmarks::polynom();
        let cp = dfg.critical_path_len();
        let mut chosen = None;
        for area in [9_000, 10_000, 11_000, 12_000, 14_000] {
            let tight = SynthesisProblem::builder(dfg.clone(), Catalog::table1())
                .mode(Mode::DetectionOnly)
                .detection_latency(cp)
                .area_limit(area)
                .build()
                .expect("well-formed");
            let at_cp = synthesize_isolated(Backend::Exact, &tight, &SolveOptions::quick());
            if !matches!(at_cp, Err(SynthesisError::Infeasible)) {
                continue;
            }
            let loose = relaxed(&tight, 1).expect("relaxable");
            if synthesize_isolated(Backend::Exact, &loose, &SolveOptions::quick()).is_ok() {
                chosen = Some(tight);
                break;
            }
        }
        let Some(problem) = chosen else {
            // No area in the probe set separates cp from cp+1 — the
            // relaxation path is still covered by the chaos suite.
            return;
        };
        let sup = supervise(&problem, &SupervisorConfig::default(), &Chaos::disabled())
            .expect("relaxation recovers feasibility");
        assert!(sup.relaxation >= 1);
        assert!(sup.degraded());
        assert!(is_sound(&sup.problem, &sup.synthesis));
        assert_eq!(
            sup.problem.detection_latency(),
            problem.detection_latency() + sup.relaxation
        );
    }

    #[test]
    fn proven_infeasibility_without_degradation_is_typed() {
        // Area below any single multiplier: infeasible at every latency.
        let problem = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
            .mode(Mode::DetectionOnly)
            .area_limit(10)
            .build()
            .expect("well-formed");
        let config = SupervisorConfig {
            max_relaxation: 1,
            ..SupervisorConfig::default()
        };
        let err = supervise(&problem, &config, &Chaos::disabled()).unwrap_err();
        assert!(
            matches!(
                err.kind,
                SupervisorErrorKind::Infeasible {
                    relaxation_steps: 1
                }
            ),
            "{:?}",
            err.kind
        );
        assert!(err.to_string().contains("relax"), "{err}");
    }

    #[test]
    fn deadline_cancelled_runs_never_claim_infeasibility() {
        // Regression for the LP outcome split: a deadline tripping in the
        // middle of branch-and-bound used to be indistinguishable from a
        // failed LP and could poison the infeasibility proof. Whatever a
        // feasible problem under an aggressive deadline produces — a win,
        // a degraded design, or typed exhaustion — it must never be the
        // supervisor's proven-infeasible verdict.
        let problem = tiny_problem();
        for micros in [0u64, 100, 500, 2_000, 10_000] {
            let config = SupervisorConfig {
                degrade: false,
                options: SolveOptions {
                    cancel: Cancellation::with_deadline(Duration::from_micros(micros)),
                    ..SolveOptions::quick()
                },
                ..SupervisorConfig::default()
            };
            match supervise(&problem, &config, &Chaos::disabled()) {
                Ok(sup) => assert!(is_sound(&sup.problem, &sup.synthesis)),
                Err(err) => assert!(
                    !matches!(err.kind, SupervisorErrorKind::Infeasible { .. }),
                    "deadline trip misreported as infeasibility at {micros}us: {err}"
                ),
            }
        }
    }

    #[test]
    fn summary_names_every_rung_that_ran() {
        let sup = supervise(
            &tiny_problem(),
            &SupervisorConfig::default(),
            &Chaos::disabled(),
        )
        .expect("feasible");
        let text = sup.degradation.summary();
        assert!(text.contains("rung ilp attempt 1: ok"), "{text}");
    }
}
