//! Deterministic chaos fault injection for the synthesis stack.
//!
//! The paper's run-time argument is that a protected design survives a
//! misbehaving component; this module lets the *synthesis pipeline* prove
//! the same about itself. A [`Chaos`] handle, seeded explicitly
//! (`--chaos-seed`) or from the `TROY_CHAOS` environment variable,
//! injects four fault families into supervised runs:
//!
//! - **panics** inside a solver back end (the supervisor must demote, not
//!   abort);
//! - **stalls** — bounded artificial latency ahead of an attempt (the
//!   deadline machinery must absorb it);
//! - **spurious cancellations** of an attempt's token (the retry/backoff
//!   machinery must classify and retry it);
//! - **cache-file corruption** — truncation, bit flips, partial JSON —
//!   applied to a result-cache directory (lookups must quarantine, never
//!   serve garbage).
//!
//! Every decision is a pure hash of `(seed, site coordinates)` — never of
//! wall-clock time, thread identity or call order — so one seed denotes
//! one fault schedule, replayable bit for bit regardless of `TROY_JOBS`
//! or machine load. The chaos suite sweeps seeds and asserts the
//! supervisor invariant: any schedule yields a valid implementation or a
//! typed error, never a panic, never a silently wrong cost.

use std::path::Path;
use std::time::Duration;

use troy_ilp::Cancellation;
use troy_portfolio::Backend;

use crate::backoff::mix;

/// Marker embedded in every injected panic payload; panic hooks and
/// log scrapers can use it to tell injected crashes from real ones.
pub const CHAOS_PANIC_MARKER: &str = "chaos-injected panic";

/// A fault the harness injects ahead of one solver attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// Panic inside the back end (after it starts, before it returns).
    Panic,
    /// Sleep this long before the attempt begins.
    Stall(Duration),
    /// Cancel the attempt's token before the solver first polls it.
    SpuriousCancel,
}

/// A fault injected on the router↔worker leg of a synthesis cluster —
/// the infrastructure-failure side of the wire, applied by the cluster
/// router's dispatch path (and its soak harness) under an enabled
/// handle. The cluster contract these exist to test: no matter which of
/// them fire, every accepted request still terminates with a certified
/// result, a typed error, or an explicit shed — never silence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterFault {
    /// Crash-stop the target worker (no drain, in-flight responses are
    /// dropped on the floor) before the dispatch goes out.
    WorkerKill,
    /// Sleep this long before forwarding the request — a slow worker or
    /// congested link; the remaining-deadline bookkeeping must absorb it.
    WorkerStall(Duration),
    /// Refuse to open the router→worker connection, as a network
    /// partition would; the router must fail over, not hang.
    Partition,
    /// Deliver only a prefix of the request frame and close, so the
    /// worker sees a torn frame and the router sees no response.
    TornFrame,
}

/// A fault injected into the cluster's *self-healing* machinery — the
/// respawn supervisor, the successor-replication write-behind and the
/// dispatch journal. These exist to prove the protection layer itself
/// survives faults: a respawned worker that is killed again must be
/// respawned again (until `--max-respawns`), a dropped replica put must
/// cost only redundancy, and a torn journal frame must lose at most
/// that one frame, never the journal's integrity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelfHealFault {
    /// Crash-stop the freshly respawned worker again shortly after it
    /// rejoins, so the supervisor must go around the loop once more.
    RespawnStorm,
    /// Tear the journal append mid-frame — the bytes of this frame are
    /// truncated as a crashing writer would leave them; replay must skip
    /// the torn frame and keep every other entry.
    JournalTorn,
    /// Drop a replication `put` on the floor before it reaches the
    /// successor; the key simply ends up with one fewer replica.
    ReplicaDrop,
}

/// A fault a misbehaving *client* inflicts on the synthesis service —
/// the adversarial side of the wire protocol, injected by the soak
/// harness's synthetic clients rather than by the server itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceFault {
    /// Send a line that is not a well-formed request object.
    MalformedJson,
    /// Dribble the request out byte by byte with pauses (partial frames);
    /// the server's frame deadline must eventually cut the connection.
    Slowloris,
    /// Close the socket mid-request without reading the response.
    Disconnect,
    /// Request an absurdly small deadline, forcing immediate expiry.
    DeadlineStorm,
}

/// Seeded, deterministic fault injector. A disabled handle (the default)
/// injects nothing and costs one branch per query.
#[derive(Debug, Clone, Copy, Default)]
pub struct Chaos {
    seed: Option<u64>,
}

impl Chaos {
    /// A handle that never injects anything.
    #[must_use]
    pub fn disabled() -> Self {
        Chaos { seed: None }
    }

    /// A handle injecting the fault schedule denoted by `seed`.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        Chaos { seed: Some(seed) }
    }

    /// Reads `TROY_CHAOS`: unset or unparsable means disabled, a `u64`
    /// means that seed's schedule.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("TROY_CHAOS") {
            Ok(v) => match v.trim().parse::<u64>() {
                Ok(seed) => Chaos::seeded(seed),
                Err(_) => Chaos::disabled(),
            },
            Err(_) => Chaos::disabled(),
        }
    }

    /// The seed, when enabled.
    #[must_use]
    pub fn seed(&self) -> Option<u64> {
        self.seed
    }

    /// `true` when this handle injects faults.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.seed.is_some()
    }

    /// The raw 64-bit roll for a named site; `None` when disabled.
    fn roll(&self, site: u64) -> Option<u64> {
        self.seed.map(|s| mix(mix(s) ^ site))
    }

    /// The fault (if any) scheduled for solver attempt
    /// `(backend, relaxation, attempt)`. Roughly 45% of attempts fault
    /// under an enabled handle: 15% panic, 15% spurious cancel, 15%
    /// stall of 1–16 ms.
    #[must_use]
    pub fn fault_for_attempt(
        &self,
        backend: Backend,
        relaxation: usize,
        attempt: usize,
    ) -> Option<InjectedFault> {
        let site = mix(backend.priority() as u64 ^ ((relaxation as u64) << 8))
            ^ mix(attempt as u64).rotate_left(23);
        let h = self.roll(site)?;
        match h % 100 {
            0..=14 => Some(InjectedFault::Panic),
            15..=29 => Some(InjectedFault::SpuriousCancel),
            30..=44 => Some(InjectedFault::Stall(Duration::from_millis(
                1 + (h >> 32) % 16,
            ))),
            _ => None,
        }
    }

    /// The service-level fault (if any) scheduled for request number
    /// `request` of client number `client`. Roughly 48% of requests
    /// misbehave under an enabled handle: 12% each of malformed JSON,
    /// slowloris framing, mid-request disconnect, and a deadline storm.
    #[must_use]
    pub fn fault_for_request(&self, client: usize, request: usize) -> Option<ServiceFault> {
        let site = mix((client as u64) ^ 0x73_6572_7669_6365) // "service"
            ^ mix(request as u64).rotate_left(29);
        let h = self.roll(site)?;
        match h % 100 {
            0..=11 => Some(ServiceFault::MalformedJson),
            12..=23 => Some(ServiceFault::Slowloris),
            24..=35 => Some(ServiceFault::Disconnect),
            36..=47 => Some(ServiceFault::DeadlineStorm),
            _ => None,
        }
    }

    /// The cluster fault (if any) scheduled for dispatch attempt
    /// `attempt` of the request fingerprinted by `key` when routed to
    /// worker `worker`. A pure function of `(seed, worker, key,
    /// attempt)` — independent of wall clock, thread identity and
    /// arrival order — so a seeded soak replays the same fault schedule
    /// for the same request stream regardless of `TROY_JOBS`. Roughly
    /// 24% of dispatches fault under an enabled handle: 3% worker kill,
    /// 7% partition, 7% torn frame, 7% stall of 1–12 ms.
    #[must_use]
    pub fn fault_for_dispatch(
        &self,
        worker: usize,
        key: u64,
        attempt: usize,
    ) -> Option<ClusterFault> {
        let site = mix((worker as u64) ^ 0x63_6c75_7374_6572) // "cluster"
            ^ mix(key).rotate_left(17)
            ^ mix(attempt as u64).rotate_left(41);
        let h = self.roll(site)?;
        match h % 100 {
            0..=2 => Some(ClusterFault::WorkerKill),
            3..=9 => Some(ClusterFault::Partition),
            10..=16 => Some(ClusterFault::TornFrame),
            17..=23 => Some(ClusterFault::WorkerStall(Duration::from_millis(
                1 + (h >> 32) % 12,
            ))),
            _ => None,
        }
    }

    /// Whether a respawn storm is scheduled for the slot `worker`'s
    /// rebirth as `generation` — the supervisor revives the worker and
    /// the schedule kills it straight away, forcing another loop. A pure
    /// function of `(seed, worker, generation)`; roughly 20% of respawns
    /// storm, so a storm chain terminates with probability 1 well before
    /// any sane `--max-respawns` budget.
    #[must_use]
    pub fn fault_for_respawn(&self, worker: usize, generation: u32) -> Option<SelfHealFault> {
        let site = mix((worker as u64) ^ 0x72_6573_7061_776e) // "respawn"
            ^ mix(u64::from(generation)).rotate_left(13);
        let h = self.roll(site)?;
        (h % 100 < 20).then_some(SelfHealFault::RespawnStorm)
    }

    /// Whether the journal append for sequence number `seq` is torn —
    /// the frame's bytes are cut short the way a crash between `write`
    /// and `fsync` would leave them. Roughly 8% of appends tear under an
    /// enabled handle.
    #[must_use]
    pub fn fault_for_journal_append(&self, seq: u64) -> Option<SelfHealFault> {
        let site = mix(seq ^ 0x6a_6f75_726e_616c); // "journal"
        let h = self.roll(site)?;
        (h % 100 < 8).then_some(SelfHealFault::JournalTorn)
    }

    /// Whether the replication `put` of the key fingerprinted by `key`
    /// toward successor `worker` is dropped. Roughly 15% of puts drop
    /// under an enabled handle.
    #[must_use]
    pub fn fault_for_replication(&self, worker: usize, key: u64) -> Option<SelfHealFault> {
        let site = mix((worker as u64) ^ 0x72_6570_6c69_6361) // "replica"
            ^ mix(key).rotate_left(31);
        let h = self.roll(site)?;
        (h % 100 < 15).then_some(SelfHealFault::ReplicaDrop)
    }

    /// Applies the pre-attempt side of `fault` (stall or cancel);
    /// panics are the solver wrapper's job, see [`Chaos::maybe_panic`].
    pub fn apply_before_attempt(&self, fault: Option<InjectedFault>, token: &Cancellation) {
        match fault {
            Some(InjectedFault::Stall(d)) => std::thread::sleep(d),
            Some(InjectedFault::SpuriousCancel) => token.cancel(),
            Some(InjectedFault::Panic) | None => {}
        }
    }

    /// Panics with a marked payload when `fault` is the panic injection —
    /// called from inside the supervised solver closure, i.e. behind the
    /// panic firewall.
    ///
    /// # Panics
    ///
    /// By design, when `fault == Some(InjectedFault::Panic)`.
    pub fn maybe_panic(&self, fault: Option<InjectedFault>, backend: Backend) {
        if fault == Some(InjectedFault::Panic) {
            let seed = self.seed.unwrap_or_default();
            panic!("{CHAOS_PANIC_MARKER} (backend={backend}, seed={seed})");
        }
    }

    /// Corrupts entries of an on-disk result-cache directory the way a
    /// crashing writer or failing disk would: per `.json` file (keyed by
    /// file name, so independent of directory iteration order) roughly
    /// one in four is left intact and the rest get one of truncation, a
    /// single bit flip, or replacement with a partial-JSON prefix.
    /// Returns how many files were damaged.
    pub fn corrupt_cache_dir(&self, dir: &Path) -> usize {
        let Some(seed) = self.seed else { return 0 };
        let Ok(entries) = std::fs::read_dir(dir) else {
            return 0;
        };
        let mut damaged = 0;
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let name = entry.file_name();
            let mut site = mix(seed) ^ 0x6368_616f_735f_6673; // "chaos_fs"
            for b in name.to_string_lossy().bytes() {
                site = mix(site ^ u64::from(b));
            }
            let Ok(mut bytes) = std::fs::read(&path) else {
                continue;
            };
            let mode = site % 4;
            if mode == 0 || bytes.is_empty() {
                continue; // spared
            }
            match mode {
                1 => bytes.truncate(bytes.len() / 2),
                2 => {
                    let pos = (site >> 8) as usize % bytes.len();
                    bytes[pos] ^= 1 << ((site >> 3) % 8);
                }
                _ => {
                    let keep = 1 + (site >> 16) as usize % bytes.len();
                    bytes.truncate(keep);
                    bytes.extend_from_slice(b"\"partial\":");
                }
            }
            if std::fs::write(&path, &bytes).is_ok() {
                damaged += 1;
            }
        }
        damaged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_injects_nothing() {
        let c = Chaos::disabled();
        assert!(!c.is_enabled());
        for backend in Backend::ALL {
            for attempt in 0..8 {
                assert_eq!(c.fault_for_attempt(backend, 0, attempt), None);
            }
        }
        let dir = std::env::temp_dir();
        assert_eq!(c.corrupt_cache_dir(&dir.join("does-not-exist")), 0);
        for client in 0..4 {
            for request in 0..8 {
                assert_eq!(c.fault_for_request(client, request), None);
            }
        }
        for worker in 0..4 {
            for attempt in 0..4 {
                assert_eq!(c.fault_for_dispatch(worker, 0xfeed, attempt), None);
            }
            assert_eq!(c.fault_for_respawn(worker, 1), None);
            assert_eq!(c.fault_for_replication(worker, 0xfeed), None);
        }
        assert_eq!(c.fault_for_journal_append(0), None);
    }

    #[test]
    fn selfheal_fault_schedules_are_deterministic_and_cover_all_families() {
        let c = Chaos::seeded(41);
        for worker in 0..3 {
            for generation in 1..4 {
                assert_eq!(
                    c.fault_for_respawn(worker, generation),
                    c.fault_for_respawn(worker, generation),
                    "pure function of (seed, worker, generation)"
                );
            }
        }
        let (mut storms, mut torn, mut drops, mut clean) = (0, 0, 0, 0);
        for seed in 0..96 {
            let c = Chaos::seeded(seed);
            for worker in 0..3 {
                match c.fault_for_respawn(worker, 1) {
                    Some(SelfHealFault::RespawnStorm) => storms += 1,
                    Some(f) => panic!("respawn site yielded {f:?}"),
                    None => clean += 1,
                }
                match c.fault_for_replication(worker, 0x9e37 * worker as u64) {
                    Some(SelfHealFault::ReplicaDrop) => drops += 1,
                    Some(f) => panic!("replication site yielded {f:?}"),
                    None => clean += 1,
                }
            }
            for seq in 0..8 {
                match c.fault_for_journal_append(seq) {
                    Some(SelfHealFault::JournalTorn) => torn += 1,
                    Some(f) => panic!("journal site yielded {f:?}"),
                    None => clean += 1,
                }
            }
        }
        assert!(
            storms > 0 && torn > 0 && drops > 0 && clean > storms + torn + drops,
            "{storms}/{torn}/{drops}/{clean}"
        );
        // Storm chains terminate: for every slot some generation is spared.
        for seed in 0..96 {
            let c = Chaos::seeded(seed);
            for worker in 0..3 {
                assert!(
                    (1..32).any(|g| c.fault_for_respawn(worker, g).is_none()),
                    "seed {seed} worker {worker}: storm never relents"
                );
            }
        }
    }

    #[test]
    fn cluster_fault_schedules_are_deterministic_and_cover_all_families() {
        let c = Chaos::seeded(5);
        for worker in 0..3 {
            for attempt in 0..4 {
                assert_eq!(
                    c.fault_for_dispatch(worker, 0xabcd, attempt),
                    c.fault_for_dispatch(worker, 0xabcd, attempt),
                    "pure function of (seed, worker, key, attempt)"
                );
            }
        }
        let (mut kills, mut stalls, mut partitions, mut torn, mut clean) = (0, 0, 0, 0, 0);
        for seed in 0..96 {
            let c = Chaos::seeded(seed);
            for worker in 0..3 {
                for key in 0..8u64 {
                    match c.fault_for_dispatch(worker, key.wrapping_mul(0x9e37), 0) {
                        Some(ClusterFault::WorkerKill) => kills += 1,
                        Some(ClusterFault::WorkerStall(d)) => {
                            assert!(d >= Duration::from_millis(1));
                            assert!(d <= Duration::from_millis(12));
                            stalls += 1;
                        }
                        Some(ClusterFault::Partition) => partitions += 1,
                        Some(ClusterFault::TornFrame) => torn += 1,
                        None => clean += 1,
                    }
                }
            }
        }
        assert!(
            kills > 0 && stalls > 0 && partitions > 0 && torn > 0 && clean > kills,
            "{kills}/{stalls}/{partitions}/{torn}/{clean}"
        );
    }

    #[test]
    fn service_fault_schedules_are_deterministic_and_cover_all_families() {
        let c = Chaos::seeded(11);
        for client in 0..4 {
            for request in 0..4 {
                assert_eq!(
                    c.fault_for_request(client, request),
                    c.fault_for_request(client, request),
                    "pure function of (seed, client, request)"
                );
            }
        }
        let (mut malformed, mut slow, mut drop_, mut storm, mut clean) = (0, 0, 0, 0, 0);
        for seed in 0..64 {
            let c = Chaos::seeded(seed);
            for client in 0..4 {
                for request in 0..4 {
                    match c.fault_for_request(client, request) {
                        Some(ServiceFault::MalformedJson) => malformed += 1,
                        Some(ServiceFault::Slowloris) => slow += 1,
                        Some(ServiceFault::Disconnect) => drop_ += 1,
                        Some(ServiceFault::DeadlineStorm) => storm += 1,
                        None => clean += 1,
                    }
                }
            }
        }
        assert!(
            malformed > 0 && slow > 0 && drop_ > 0 && storm > 0 && clean > 0,
            "{malformed}/{slow}/{drop_}/{storm}/{clean}"
        );
    }

    #[test]
    fn schedules_are_deterministic_per_seed_and_differ_across_seeds() {
        let schedule = |seed: u64| -> Vec<Option<InjectedFault>> {
            let c = Chaos::seeded(seed);
            Backend::ALL
                .iter()
                .flat_map(|&b| (0..4).map(move |a| (b, a)))
                .flat_map(|(b, a)| (0..2).map(move |r| (b, r, a)))
                .map(|(b, r, a)| c.fault_for_attempt(b, r, a))
                .collect()
        };
        assert_eq!(schedule(7), schedule(7), "same seed, same schedule");
        let distinct: std::collections::BTreeSet<String> =
            (0..16).map(|s| format!("{:?}", schedule(s))).collect();
        assert!(distinct.len() > 8, "seeds decode to distinct schedules");
    }

    #[test]
    fn every_fault_family_occurs_within_a_small_seed_sweep() {
        let (mut panics, mut cancels, mut stalls) = (0, 0, 0);
        for seed in 0..64 {
            let c = Chaos::seeded(seed);
            for backend in Backend::ALL {
                for attempt in 0..4 {
                    match c.fault_for_attempt(backend, 0, attempt) {
                        Some(InjectedFault::Panic) => panics += 1,
                        Some(InjectedFault::SpuriousCancel) => cancels += 1,
                        Some(InjectedFault::Stall(d)) => {
                            assert!(d >= Duration::from_millis(1));
                            assert!(d <= Duration::from_millis(16));
                            stalls += 1;
                        }
                        None => {}
                    }
                }
            }
        }
        assert!(
            panics > 0 && cancels > 0 && stalls > 0,
            "{panics}/{cancels}/{stalls}"
        );
    }

    #[test]
    fn env_parsing_is_defensive() {
        // The env var is process-global, so only the constructor's
        // parse on explicit values is pinned here.
        assert_eq!(Chaos::seeded(9).seed(), Some(9));
        assert!(Chaos::seeded(9).is_enabled());
        assert!(!Chaos::disabled().is_enabled());
    }

    #[test]
    fn cache_corruption_damages_only_json_and_is_deterministic() {
        let dir = std::env::temp_dir().join(format!("troy-chaos-fs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let seed_files = || {
            for i in 0..12 {
                std::fs::write(
                    dir.join(format!("{i:032x}.json")),
                    format!("{{\"cost\":{i},\"assignments\":[[0,0,0,0]]}}"),
                )
                .unwrap();
            }
            std::fs::write(dir.join("README.txt"), "not a cache entry").unwrap();
        };
        seed_files();
        let first = Chaos::seeded(3).corrupt_cache_dir(&dir);
        assert!(first > 0, "a 12-file directory sees some damage");
        assert_eq!(
            std::fs::read_to_string(dir.join("README.txt")).unwrap(),
            "not a cache entry",
            "non-json files are untouched"
        );
        let snapshot: Vec<Vec<u8>> = (0..12)
            .map(|i| std::fs::read(dir.join(format!("{i:032x}.json"))).unwrap())
            .collect();
        // Re-seeding the directory and replaying the same seed produces
        // byte-identical damage.
        seed_files();
        let second = Chaos::seeded(3).corrupt_cache_dir(&dir);
        assert_eq!(first, second);
        for (i, before) in snapshot.iter().enumerate() {
            let after = std::fs::read(dir.join(format!("{i:032x}.json"))).unwrap();
            assert_eq!(*before, after, "file {i}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
