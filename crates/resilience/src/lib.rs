//! `troy-resilience` — the resilient synthesis supervisor and its chaos
//! fault-injection harness.
//!
//! The DAC'14 paper this workspace reproduces argues that a design
//! synthesized for run-time Trojan *detection and recovery* keeps
//! producing correct answers while individual IP blocks misbehave. This
//! crate applies the same standard to the synthesis pipeline itself:
//!
//! - [`supervise`] wraps every solver invocation with a **deadline**
//!   (enforced through the [`troy_ilp::Cancellation`] chain), **retry
//!   with jittered exponential backoff** for transient faults, **panic
//!   isolation** (a crashing back end is demoted, never aborts the run),
//!   and a **degradation ladder** — ILP → exact → annealing → greedy,
//!   then latency relaxation — so a run always returns the best
//!   implementation it could prove, annotated with a structured
//!   [`Degradation`] report.
//! - [`Chaos`] is a seeded, deterministic fault injector (solver panics,
//!   artificial stalls, spurious cancellations, cache-file corruption)
//!   activated via `TROY_CHAOS` or `--chaos-seed`; the crate's property
//!   suite sweeps fault schedules and asserts the supervisor invariant:
//!   a valid implementation or a typed, actionable error — never a
//!   panic, never a silently wrong cost.
//!
//! ```
//! use troy_dfg::benchmarks;
//! use troy_resilience::{supervise, Chaos, SupervisorConfig};
//! use troyhls::{Catalog, Mode, SynthesisProblem};
//!
//! let problem = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
//!     .mode(Mode::DetectionOnly)
//!     .build()
//!     .unwrap();
//! let sup = supervise(&problem, &SupervisorConfig::default(), &Chaos::disabled()).unwrap();
//! assert!(!sup.degraded());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backoff;
pub mod chaos;
mod supervisor;

pub use backoff::{parse_duration, Backoff};
pub use chaos::{
    Chaos, ClusterFault, InjectedFault, SelfHealFault, ServiceFault, CHAOS_PANIC_MARKER,
};
pub use supervisor::{
    supervise, Attempt, AttemptOutcome, Degradation, RungReport, Supervised, SupervisorConfig,
    SupervisorError, SupervisorErrorKind, GRACE_BUDGET, LADDER,
};
