//! Deterministic jittered exponential backoff, and the humane duration
//! syntax the CLI flags use.
//!
//! Backoff delays are derived from a seed and the retry coordinates
//! (rung, attempt), not from wall-clock entropy, so a supervised run's
//! retry schedule is reproducible — the property the chaos suite relies
//! on to replay fault schedules bit for bit.

use std::time::Duration;

/// Splitmix64 step: the workspace's standard cheap bit mixer (the
/// vendored `rand` uses the same core), used here to hash retry
/// coordinates into jitter deterministically.
#[must_use]
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Jittered exponential backoff policy: attempt `k` sleeps
/// `base * 2^k ± 50%`, capped, with the jitter drawn deterministically
/// from `(seed, rung, attempt)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// Delay before the first retry (attempt 1); doubles per attempt.
    pub base: Duration,
    /// Upper bound on any single delay.
    pub cap: Duration,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff {
            base: Duration::from_millis(5),
            cap: Duration::from_millis(200),
            seed: 0,
        }
    }
}

impl Backoff {
    /// The delay to sleep before retry number `attempt` (1-based) of rung
    /// number `rung`: exponential in `attempt`, multiplied by a jitter
    /// factor uniform in `[0.5, 1.5)`, capped at [`Backoff::cap`].
    ///
    /// Saturates instead of overflowing: the doubling stops at 2^15 and
    /// the jittered product clamps to the cap, so arbitrarily large
    /// attempt counts (or a pathological `base`) always yield a delay in
    /// `[0, cap]` — never a panic.
    #[must_use]
    pub fn delay(&self, rung: usize, attempt: usize) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << attempt.min(16).saturating_sub(1) as u32);
        let h = mix(self.seed ^ mix(rung as u64) ^ mix(attempt as u64).rotate_left(17));
        // 10 fractional bits are plenty for a sleep; factor in [0.5, 1.5).
        let factor = 0.5 + f64::from((h >> 20) as u32 & 0x3ff) / 1024.0;
        // Jitter in f64 seconds: `Duration::mul_f64` panics on overflow,
        // and `exp` can already sit near `Duration::MAX` after the
        // saturating doubling.
        let secs = (exp.as_secs_f64() * factor).min(self.cap.as_secs_f64());
        Duration::try_from_secs_f64(secs)
            .unwrap_or(self.cap)
            .min(self.cap)
    }
}

/// Parses a humane duration: `"2s"`, `"1500ms"`, `"2m"`, or a bare
/// number of seconds (`"2"`). Fractions are accepted for seconds and
/// minutes (`"0.5s"`).
#[must_use]
pub fn parse_duration(text: &str) -> Option<Duration> {
    let text = text.trim();
    let (number, unit) = match text.find(|c: char| c.is_ascii_alphabetic()) {
        Some(split) => text.split_at(split),
        None => (text, "s"),
    };
    let value: f64 = number.trim().parse().ok()?;
    if !value.is_finite() || value < 0.0 {
        return None;
    }
    let seconds = match unit.trim() {
        "ms" => value / 1000.0,
        "s" | "sec" | "secs" => value,
        "m" | "min" => value * 60.0,
        _ => return None,
    };
    // `from_secs_f64` panics when the value overflows a Duration (e.g.
    // `--deadline 1e20s` from a hostile client); report it as unparseable.
    Duration::try_from_secs_f64(seconds).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_grows_is_jittered_and_capped() {
        let b = Backoff::default();
        // Deterministic: the same coordinates give the same delay.
        assert_eq!(b.delay(0, 1), b.delay(0, 1));
        // Jitter keeps every delay within [0.5x, 1.5x] of the exponential.
        for attempt in 1..=4usize {
            let exp = b.base * (1 << (attempt - 1));
            let d = b.delay(2, attempt);
            assert!(d >= exp / 2, "attempt {attempt}: {d:?} < {:?}", exp / 2);
            assert!(d <= b.cap.min(exp * 3 / 2), "attempt {attempt}: {d:?}");
        }
        // The cap binds eventually.
        assert_eq!(b.delay(0, 12), b.cap);
        // Different rungs see different jitter (with overwhelming odds).
        assert_ne!(b.delay(0, 1), b.delay(1, 1));
    }

    #[test]
    fn seed_changes_the_jitter_stream() {
        let a = Backoff {
            seed: 1,
            ..Backoff::default()
        };
        let b = Backoff {
            seed: 2,
            ..Backoff::default()
        };
        assert_ne!(a.delay(0, 2), b.delay(0, 2));
    }

    #[test]
    fn saturates_at_the_cap_for_large_attempt_counts() {
        // The doubling and the jitter multiply must saturate, never
        // overflow: every attempt count from 32 up yields exactly the cap.
        let b = Backoff::default();
        for attempt in (32..=4096).chain([usize::MAX / 2, usize::MAX]) {
            assert_eq!(b.delay(0, attempt), b.cap, "attempt {attempt}");
            assert_eq!(b.delay(usize::MAX, attempt), b.cap);
        }
    }

    #[test]
    fn pathological_base_and_cap_never_panic() {
        // A base near Duration::MAX would overflow `mul_f64` with a
        // jitter factor above 1.0; the f64-seconds clamp absorbs it.
        let huge = Backoff {
            base: Duration::MAX,
            cap: Duration::MAX,
            seed: 7,
        };
        for attempt in [1, 2, 16, 33, 1024] {
            assert!(huge.delay(3, attempt) <= huge.cap);
        }
        let zero = Backoff {
            base: Duration::ZERO,
            cap: Duration::ZERO,
            seed: 0,
        };
        assert_eq!(zero.delay(0, 64), Duration::ZERO);
    }

    #[test]
    fn durations_parse_humanely() {
        assert_eq!(parse_duration("2s"), Some(Duration::from_secs(2)));
        assert_eq!(parse_duration("1500ms"), Some(Duration::from_millis(1500)));
        assert_eq!(parse_duration("2m"), Some(Duration::from_secs(120)));
        assert_eq!(parse_duration("2"), Some(Duration::from_secs(2)));
        assert_eq!(parse_duration("0.5s"), Some(Duration::from_millis(500)));
        assert_eq!(parse_duration(" 3 s "), Some(Duration::from_secs(3)));
        for bad in [
            "", "s", "-1s", "2h", "nan", "infs", "1.2.3", "1e20s", "1e18m",
        ] {
            assert_eq!(parse_duration(bad), None, "{bad:?}");
        }
    }
}
