//! Parallel solver portfolio for TroyHLS.
//!
//! The paper solves each Table 3/4 row with a single ILP run and marks
//! rows that hit the one-hour limit with `*` (best effort). This crate
//! generalizes that protocol into a production harness:
//!
//! - [`race`] runs the four back ends (exact license-lattice search, ILP
//!   branch & bound, greedy grow/shrink, simulated annealing) on **one**
//!   problem with cooperative cancellation: a back end that *proves*
//!   optimality cancels every rival that can no longer win, and at a
//!   deadline the best incumbent is returned marked timed-out — the
//!   paper's `*` semantics, now across a whole portfolio;
//! - [`solve_batch`] spreads **many** independent problems (all table
//!   rows, sweep grids) over a work-stealing thread pool ([`pool`]);
//! - [`ResultCache`] memoizes outcomes under a canonical content hash of
//!   the problem ([`cache_key`]), in memory and as on-disk JSON, so a
//!   re-run of an unchanged experiment grid costs milliseconds.
//!
//! Determinism is a design constraint throughout: the race winner is
//! chosen by a total order (cost, then fixed backend priority), never by
//! wall-clock arrival, so `--jobs 1` and `--jobs N` produce identical
//! results whenever the solvers finish within budget, and cache hits
//! reproduce the miss byte for byte.
//!
//! # Example: race the portfolio on the paper's Figure 5 instance
//!
//! ```
//! use troy_dfg::benchmarks;
//! use troy_portfolio::race;
//! use troyhls::{Catalog, Mode, SolveOptions, SynthesisProblem};
//!
//! let problem = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
//!     .mode(Mode::DetectionRecovery)
//!     .detection_latency(4)
//!     .recovery_latency(3)
//!     .area_limit(22_000)
//!     .build()?;
//! let won = race(&problem, &SolveOptions::default(), 1)?;
//! assert_eq!(won.synthesis.cost, 4160);
//! assert!(!won.timed_out);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod cache;
mod pool;
mod race;

pub use batch::{default_jobs, solve_batch, BatchConfig};
pub use cache::{cache_key, CacheKey, CachedEntry, ResultCache};
pub use pool::run_indexed;
pub use race::{race, synthesize_isolated, Backend, PortfolioResult};
