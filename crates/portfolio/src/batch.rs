//! Batched synthesis: many independent problems over the worker pool.
//!
//! The paper's experiment grid (twelve Table 3 rows, twelve Table 4
//! rows, sweep curves) is embarrassingly parallel across rows; this
//! module spreads the rows over [`crate::run_indexed`] while each row
//! runs its portfolio sequentially, so `jobs` bounds total solver
//! threads. Results come back in input order and, with a cache attached,
//! repeated grids are served from content-addressed hits.

use std::time::Instant;

use troyhls::{SolveOptions, SynthesisError, SynthesisProblem};

use crate::cache::{cache_key, ResultCache};
use crate::pool::run_indexed;
use crate::race::{race, synthesize_isolated, Backend, PortfolioResult};

/// How a batch runs.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Worker threads for the pool (clamped to the number of problems).
    pub jobs: usize,
    /// `true` races all four back ends per problem; `false` runs only
    /// [`BatchConfig::backend`].
    pub portfolio: bool,
    /// The single back end used when `portfolio` is off.
    pub backend: Backend,
    /// Per-problem budget (its `cancel` token is the whole batch's
    /// parent: cancelling it stops every row).
    pub options: SolveOptions,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            jobs: default_jobs(),
            portfolio: true,
            backend: Backend::Exact,
            options: SolveOptions::default(),
        }
    }
}

impl BatchConfig {
    /// The cache-key engine tag this configuration solves under.
    #[must_use]
    pub fn engine(&self) -> &'static str {
        if self.portfolio {
            "portfolio"
        } else {
            self.backend.name()
        }
    }
}

/// Default worker count: the `TROY_JOBS` environment variable when set
/// to a positive integer, otherwise the machine's available parallelism.
#[must_use]
pub fn default_jobs() -> usize {
    std::env::var("TROY_JOBS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
}

/// Solves every problem in `problems`, in input order, over up to
/// `config.jobs` workers; `cache` (when given) is consulted before and
/// populated after each solve.
#[must_use]
pub fn solve_batch(
    problems: &[SynthesisProblem],
    config: &BatchConfig,
    cache: Option<&ResultCache>,
) -> Vec<Result<PortfolioResult, SynthesisError>> {
    run_indexed(config.jobs, problems.len(), |i| {
        solve_one(&problems[i], config, cache)
    })
}

fn solve_one(
    problem: &SynthesisProblem,
    config: &BatchConfig,
    cache: Option<&ResultCache>,
) -> Result<PortfolioResult, SynthesisError> {
    let key = cache_key(problem, config.engine(), &config.options);
    if let Some(hit) = cache.and_then(|c| c.lookup(&key, problem)) {
        return Ok(hit);
    }
    let options = config
        .options
        .clone()
        .with_cancel(config.options.cancel.child());
    let result = if config.portfolio {
        race(problem, &options, 1)
    } else {
        let t0 = Instant::now();
        synthesize_isolated(config.backend, problem, &options).map(|s| PortfolioResult {
            timed_out: !s.proven_optimal,
            synthesis: s,
            winner: config.backend,
            from_cache: false,
            elapsed: t0.elapsed(),
        })
    };
    if let (Some(cache), Ok(r)) = (cache, &result) {
        cache.store(&key, r);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use troy_dfg::benchmarks;
    use troyhls::{Catalog, Mode};

    fn quick_problems() -> Vec<SynthesisProblem> {
        ["polynom", "diff2"]
            .into_iter()
            .map(|name| {
                let dfg = benchmarks::by_name(name).expect("known benchmark");
                let cp = dfg.critical_path_len();
                SynthesisProblem::builder(dfg, Catalog::paper8())
                    .mode(Mode::DetectionOnly)
                    .detection_latency(cp + 1)
                    .build()
                    .expect("well-formed")
            })
            .collect()
    }

    #[test]
    fn batch_solves_every_problem_in_order() {
        let problems = quick_problems();
        let config = BatchConfig {
            jobs: 2,
            portfolio: false,
            backend: Backend::Greedy,
            options: SolveOptions::quick(),
        };
        let results = solve_batch(&problems, &config, None);
        assert_eq!(results.len(), problems.len());
        for (problem, result) in problems.iter().zip(&results) {
            let r = result.as_ref().expect("unconstrained rows are feasible");
            assert!(troyhls::validate(problem, &r.synthesis.implementation).is_empty());
            assert_eq!(r.winner, Backend::Greedy);
            assert!(!r.from_cache);
        }
    }

    #[test]
    fn second_batch_run_is_served_from_cache() {
        let problems = quick_problems();
        let config = BatchConfig {
            jobs: 1,
            portfolio: false,
            backend: Backend::Greedy,
            options: SolveOptions::quick(),
        };
        let cache = ResultCache::in_memory();
        let cold = solve_batch(&problems, &config, Some(&cache));
        assert!(cold
            .iter()
            .all(|r| !r.as_ref().expect("feasible").from_cache));
        assert_eq!(cache.len(), problems.len());

        let warm = solve_batch(&problems, &config, Some(&cache));
        for (c, w) in cold.iter().zip(&warm) {
            let (c, w) = (c.as_ref().expect("feasible"), w.as_ref().expect("feasible"));
            assert!(w.from_cache);
            assert_eq!(c.synthesis.cost, w.synthesis.cost);
            assert_eq!(c.synthesis.implementation, w.synthesis.implementation);
        }
    }

    #[test]
    fn env_override_parses_defensively() {
        // default_jobs() must never return zero whatever the env holds;
        // the env itself is process-global, so only the floor is pinned.
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn engine_tag_tracks_configuration() {
        let mut config = BatchConfig::default();
        assert_eq!(config.engine(), "portfolio");
        config.portfolio = false;
        config.backend = Backend::Annealing;
        assert_eq!(config.engine(), "annealing");
    }
}
