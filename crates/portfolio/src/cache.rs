//! Content-addressed result cache.
//!
//! A solved problem is memoized under a canonical 128-bit fingerprint of
//! everything that determines the answer: the DFG (name, node kinds,
//! edges), the catalog (every offering's area and cost), the constraint
//! set (mode, λ_det, λ_rec, A̅, closely-related pairs), the engine that
//! solved it and its budget. Two layers back the fingerprint: a
//! process-local map and an optional on-disk directory of one JSON file
//! per entry, so a re-run of an unchanged experiment grid (all Table 3/4
//! rows) costs file reads instead of solver hours.
//!
//! Cached designs are **re-validated on load** against the problem they
//! claim to solve — a corrupted or stale file silently degrades to a
//! cache miss, never to a wrong answer.

use std::collections::HashMap;
use std::fmt;
use std::io;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Duration;

use troyhls::{
    Assignment, Implementation, Mode, Role, SolveOptions, Synthesis, SynthesisProblem, VendorId,
};

use crate::race::{Backend, PortfolioResult};

/// 128-bit content fingerprint, rendered as 32 hex digits (also the
/// on-disk file stem).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey(u64, u64);

impl CacheKey {
    /// The two independent 64-bit fingerprint streams, in render order
    /// (`halves().0` is the first 16 hex digits of [`fmt::Display`]).
    ///
    /// Consumers that place content-addressed requests — the cluster
    /// router's consistent-hash ring — need the raw words, not the hex
    /// rendering; exposing them keeps router-side placement and
    /// worker-side cache addressing derived from the same fingerprint.
    #[must_use]
    pub fn halves(self) -> (u64, u64) {
        (self.0, self.1)
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.0, self.1)
    }
}

/// Two independent FNV-1a streams over the same bytes; 64-bit FNV alone
/// is too collision-prone to address results by content.
struct Fingerprint {
    a: u64,
    b: u64,
}

impl Fingerprint {
    fn new() -> Self {
        // Standard FNV-1a offset basis, and the same basis advanced over
        // a domain-separation tag for the second stream.
        let mut f = Fingerprint {
            a: 0xcbf2_9ce4_8422_2325,
            b: 0xcbf2_9ce4_8422_2325,
        };
        for byte in b"troy-portfolio-cache-v1" {
            f.b = (f.b ^ u64::from(*byte)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        f
    }

    fn write(&mut self, bytes: &[u8]) {
        for byte in bytes {
            self.a = (self.a ^ u64::from(*byte)).wrapping_mul(0x0000_0100_0000_01b3);
            self.b = (self.b ^ u64::from(*byte)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Length-prefix free framing: a field separator byte prevents
        // adjacent variable-length fields from aliasing.
        self.write_raw(0xfe);
    }

    fn write_raw(&mut self, byte: u8) {
        self.a = (self.a ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
        self.b = (self.b ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn finish(self) -> CacheKey {
        CacheKey(self.a, self.b)
    }
}

/// Canonical fingerprint of `(problem, engine, budget)`.
///
/// `engine` names what will solve the problem (`"portfolio"` or a
/// [`Backend::name`]); the budget is part of the key because timed-out
/// best-effort answers legitimately differ across budgets.
#[must_use]
pub fn cache_key(problem: &SynthesisProblem, engine: &str, options: &SolveOptions) -> CacheKey {
    let mut f = Fingerprint::new();
    f.write(engine.as_bytes());
    f.write_u64(options.time_limit.as_millis() as u64);
    f.write_u64(options.node_limit as u64);

    let dfg = problem.dfg();
    f.write(dfg.name().as_bytes());
    f.write_u64(dfg.len() as u64);
    for n in dfg.node_ids() {
        f.write_raw(dfg.kind(n) as u8);
    }
    for (from, to) in dfg.edges() {
        f.write_u64(from.index() as u64);
        f.write_u64(to.index() as u64);
    }

    let catalog = problem.catalog();
    f.write_u64(catalog.num_vendors() as u64);
    for vendor in catalog.vendors() {
        for ip_type in troy_dfg::IpTypeId::all() {
            if let Some(o) = catalog.offering(vendor, ip_type) {
                f.write_u64(vendor.index() as u64);
                f.write_u64(ip_type.index() as u64);
                f.write_u64(o.area);
                f.write_u64(o.cost);
            }
        }
    }

    f.write_raw(match problem.mode() {
        Mode::DetectionOnly => 1,
        Mode::DetectionRecovery => 2,
    });
    f.write_u64(problem.detection_latency() as u64);
    f.write_u64(problem.recovery_latency() as u64);
    f.write_u64(problem.area_limit());
    for &(a, b) in problem.related_pairs() {
        f.write_u64(a.index() as u64);
        f.write_u64(b.index() as u64);
    }
    f.finish()
}

/// The serializable payload of one cache entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedEntry {
    /// License cost of the cached design.
    pub cost: u64,
    /// Whether the cost was proven optimal.
    pub proven_optimal: bool,
    /// Whether the run was best-effort (the paper's `*`).
    pub timed_out: bool,
    /// [`Backend::name`] of the winning back end.
    pub winner: String,
    /// Number of operations the implementation covers.
    pub num_ops: usize,
    /// Flat assignments: `(op, role index, cycle, vendor)`.
    pub assignments: Vec<(usize, usize, usize, usize)>,
}

impl CachedEntry {
    /// Snapshot of a portfolio result.
    #[must_use]
    pub fn from_result(r: &PortfolioResult) -> Self {
        CachedEntry {
            cost: r.synthesis.cost,
            proven_optimal: r.synthesis.proven_optimal,
            timed_out: r.timed_out,
            winner: r.winner.name().to_owned(),
            num_ops: r.synthesis.implementation.num_ops(),
            assignments: r
                .synthesis
                .implementation
                .iter()
                .map(|(copy, a)| {
                    (
                        copy.op.index(),
                        copy.role.index(),
                        a.cycle,
                        a.vendor.index(),
                    )
                })
                .collect(),
        }
    }

    /// Rehydrates and **re-validates** the entry against `problem`.
    /// Returns `None` when the entry does not describe a valid design of
    /// the right cost for this problem (treated as a cache miss).
    #[must_use]
    pub fn to_result(&self, problem: &SynthesisProblem) -> Option<PortfolioResult> {
        let winner = Backend::parse(&self.winner)?;
        if self.num_ops != problem.dfg().len() {
            return None;
        }
        let mut imp = Implementation::new(self.num_ops);
        for &(op, role, cycle, vendor) in &self.assignments {
            if op >= self.num_ops || vendor >= problem.catalog().num_vendors() {
                return None;
            }
            let role = match role {
                0 => Role::Nc,
                1 => Role::Rc,
                2 => Role::Recovery,
                _ => return None,
            };
            imp.assign(
                troy_dfg::NodeId::new(op),
                role,
                Assignment {
                    cycle,
                    vendor: VendorId::new(vendor),
                },
            );
        }
        if !troyhls::validate(problem, &imp).is_empty() || imp.license_cost(problem) != self.cost {
            return None;
        }
        Some(PortfolioResult {
            synthesis: Synthesis {
                implementation: imp,
                cost: self.cost,
                proven_optimal: self.proven_optimal,
            },
            winner,
            timed_out: self.timed_out,
            from_cache: true,
            elapsed: Duration::ZERO,
        })
    }

    /// Serializes the entry as one line of JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"cost\":{},\"proven_optimal\":{},\"timed_out\":{},\"winner\":\"{}\",\"num_ops\":{},\"assignments\":[",
            self.cost, self.proven_optimal, self.timed_out, self.winner, self.num_ops
        );
        for (i, (op, role, cycle, vendor)) in self.assignments.iter().enumerate() {
            let comma = if i == 0 { "" } else { "," };
            let _ = write!(s, "{comma}[{op},{role},{cycle},{vendor}]");
        }
        s.push_str("]}");
        s
    }

    /// Parses [`CachedEntry::to_json`] output (tolerant of key order).
    #[must_use]
    pub fn from_json(text: &str) -> Option<Self> {
        let value = json::parse(text)?;
        let obj = value.as_object()?;
        let field = |name: &str| obj.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        let assignments = field("assignments")?
            .as_array()?
            .iter()
            .map(|row| {
                let quad = row.as_array()?;
                if quad.len() != 4 {
                    return None;
                }
                Some((
                    quad[0].as_u64()? as usize,
                    quad[1].as_u64()? as usize,
                    quad[2].as_u64()? as usize,
                    quad[3].as_u64()? as usize,
                ))
            })
            .collect::<Option<Vec<_>>>()?;
        Some(CachedEntry {
            cost: field("cost")?.as_u64()?,
            proven_optimal: field("proven_optimal")?.as_bool()?,
            timed_out: field("timed_out")?.as_bool()?,
            winner: field("winner")?.as_str()?.to_owned(),
            num_ops: field("num_ops")?.as_u64()? as usize,
            assignments,
        })
    }
}

/// Two-layer (memory + optional disk) result cache, shareable across the
/// batch pool's worker threads.
///
/// Disk writes are **atomic**: each entry is written to a temporary file
/// in the cache directory, fsynced, then renamed over the final name (and
/// the directory fsynced), so a process killed mid-store can never leave
/// a torn entry under a live key. Disk entries that fail parsing or
/// re-validation on load are **quarantined** — renamed to
/// `<fingerprint>.json.corrupt` — instead of being silently re-read on
/// every lookup; [`ResultCache::quarantined`] counts them.
#[derive(Debug)]
pub struct ResultCache {
    memory: Mutex<HashMap<CacheKey, CachedEntry>>,
    dir: Option<PathBuf>,
    quarantined: std::sync::atomic::AtomicUsize,
}

impl ResultCache {
    /// A process-local cache with no disk layer.
    #[must_use]
    pub fn in_memory() -> Self {
        ResultCache {
            memory: Mutex::new(HashMap::new()),
            dir: None,
            quarantined: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// A cache persisted under `dir` (one `<fingerprint>.json` per entry),
    /// created if missing.
    ///
    /// # Errors
    ///
    /// Propagates the error when `dir` cannot be created.
    pub fn on_disk(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ResultCache {
            memory: Mutex::new(HashMap::new()),
            dir: Some(dir),
            quarantined: std::sync::atomic::AtomicUsize::new(0),
        })
    }

    /// Number of disk entries this handle quarantined (renamed to
    /// `.corrupt`) after they failed parsing or re-validation.
    #[must_use]
    pub fn quarantined(&self) -> usize {
        self.quarantined.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The disk directory, when this cache has one.
    #[must_use]
    pub fn dir(&self) -> Option<&std::path::Path> {
        self.dir.as_deref()
    }

    /// Number of entries in the memory layer.
    #[must_use]
    pub fn len(&self) -> usize {
        self.memory.lock().expect("cache lock").len()
    }

    /// `true` when the memory layer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up `key`, re-validating against `problem`. Disk hits are
    /// promoted into the memory layer; invalid entries are misses, and a
    /// disk file that fails parsing or re-validation is quarantined (see
    /// the type docs) so it is never re-read.
    #[must_use]
    pub fn lookup(&self, key: &CacheKey, problem: &SynthesisProblem) -> Option<PortfolioResult> {
        if let Some(entry) = self.memory.lock().expect("cache lock").get(key) {
            return entry.to_result(problem);
        }
        let dir = self.dir.as_ref()?;
        let path = dir.join(format!("{key}.json"));
        let text = std::fs::read_to_string(&path).ok()?;
        let validated = CachedEntry::from_json(&text).and_then(|e| {
            let r = e.to_result(problem)?;
            Some((e, r))
        });
        let Some((entry, result)) = validated else {
            // Move the bad file aside (best effort): subsequent lookups
            // miss cleanly, and the evidence survives for inspection.
            let _ = std::fs::rename(&path, dir.join(format!("{key}.json.corrupt")));
            self.quarantined
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return None;
        };
        self.memory.lock().expect("cache lock").insert(*key, entry);
        Some(result)
    }

    /// Stores `result` under `key` in both layers. Disk write failures
    /// are swallowed — the cache is an accelerator, not a database — but
    /// the write itself is atomic (temp file + rename + directory sync),
    /// so readers and survivors of a crash see either no entry or a
    /// complete one, never a torn prefix.
    pub fn store(&self, key: &CacheKey, result: &PortfolioResult) {
        let entry = CachedEntry::from_result(result);
        if let Some(dir) = &self.dir {
            let _ = write_atomic(dir, &format!("{key}.json"), entry.to_json().as_bytes());
        }
        self.memory.lock().expect("cache lock").insert(*key, entry);
    }
}

/// Writes `bytes` to `dir/name` atomically: a unique temp file in the
/// same directory is written and fsynced, renamed over the final name,
/// and the directory itself fsynced so the rename is durable. A crash at
/// any point leaves either the old content or the new — never a torn
/// file under the final name.
fn write_atomic(dir: &std::path::Path, name: &str, bytes: &[u8]) -> io::Result<()> {
    use std::io::Write as _;

    // The temp name is unique per (process, thread) so concurrent stores
    // of the same key cannot clobber each other's scratch file; the final
    // rename is last-writer-wins either way.
    let tmp = dir.join(format!(
        "{name}.tmp.{}.{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp, dir.join(name))?;
        // Directory sync makes the rename itself durable; not all
        // platforms support opening directories, so failure to sync is
        // not failure to store.
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// A deliberately tiny JSON subset parser (numbers, strings, bools,
/// arrays, objects) — exactly what [`CachedEntry::to_json`] emits. The
/// vendored `serde` is an API stub, so the cache carries its own codec.
mod json {
    pub(super) enum Value {
        Num(u64),
        Bool(bool),
        Str(String),
        Arr(Vec<Value>),
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub(super) fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }

        pub(super) fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }

        pub(super) fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        pub(super) fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(v) => Some(v),
                _ => None,
            }
        }

        pub(super) fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(v) => Some(v),
                _ => None,
            }
        }
    }

    pub(super) fn parse(text: &str) -> Option<Value> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        (pos == bytes.len()).then_some(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while bytes
            .get(*pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            *pos += 1;
        }
    }

    fn eat(bytes: &[u8], pos: &mut usize, expected: u8) -> Option<()> {
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&expected) {
            *pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Option<Value> {
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b'{' => parse_object(bytes, pos),
            b'[' => parse_array(bytes, pos),
            b'"' => parse_string(bytes, pos).map(Value::Str),
            b'0'..=b'9' => parse_number(bytes, pos),
            b't' => parse_literal(bytes, pos, b"true").map(|()| Value::Bool(true)),
            b'f' => parse_literal(bytes, pos, b"false").map(|()| Value::Bool(false)),
            _ => None,
        }
    }

    fn parse_literal(bytes: &[u8], pos: &mut usize, word: &[u8]) -> Option<()> {
        if bytes[*pos..].starts_with(word) {
            *pos += word.len();
            Some(())
        } else {
            None
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Option<Value> {
        let start = *pos;
        while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        std::str::from_utf8(&bytes[start..*pos])
            .ok()?
            .parse()
            .ok()
            .map(Value::Num)
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Option<String> {
        eat(bytes, pos, b'"')?;
        let mut out = String::new();
        loop {
            match bytes.get(*pos)? {
                b'"' => {
                    *pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    *pos += 1;
                    match bytes.get(*pos)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        _ => return None,
                    }
                    *pos += 1;
                }
                &byte if byte < 0x80 => {
                    out.push(char::from(byte));
                    *pos += 1;
                }
                _ => return None,
            }
        }
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Option<Value> {
        eat(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Some(Value::Arr(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos)? {
                b',' => *pos += 1,
                b']' => {
                    *pos += 1;
                    return Some(Value::Arr(items));
                }
                _ => return None,
            }
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Option<Value> {
        eat(bytes, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Some(Value::Obj(fields));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            eat(bytes, pos, b':')?;
            let value = parse_value(bytes, pos)?;
            fields.push((key, value));
            skip_ws(bytes, pos);
            match bytes.get(*pos)? {
                b',' => *pos += 1,
                b'}' => {
                    *pos += 1;
                    return Some(Value::Obj(fields));
                }
                _ => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use troy_dfg::benchmarks;
    use troyhls::{Catalog, ExactSolver, Synthesizer};

    fn fig5() -> SynthesisProblem {
        SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
            .mode(Mode::DetectionRecovery)
            .detection_latency(4)
            .recovery_latency(3)
            .area_limit(22_000)
            .build()
            .expect("figure 5 instance is well-formed")
    }

    fn solved(problem: &SynthesisProblem) -> PortfolioResult {
        let s = ExactSolver::new()
            .synthesize(problem, &SolveOptions::quick())
            .expect("figure 5 is feasible");
        PortfolioResult {
            timed_out: !s.proven_optimal,
            synthesis: s,
            winner: Backend::Exact,
            from_cache: false,
            elapsed: Duration::ZERO,
        }
    }

    #[test]
    fn key_is_stable_and_content_sensitive() {
        let p = fig5();
        let opts = SolveOptions::quick();
        let k1 = cache_key(&p, "portfolio", &opts);
        let k2 = cache_key(&p, "portfolio", &opts);
        assert_eq!(k1, k2, "same content, same key");
        assert_ne!(
            k1,
            cache_key(&p, "exact", &opts),
            "engine tag is part of the key"
        );

        let tighter = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
            .mode(Mode::DetectionRecovery)
            .detection_latency(4)
            .recovery_latency(3)
            .area_limit(21_999)
            .build()
            .expect("still well-formed");
        assert_ne!(
            k1,
            cache_key(&tighter, "portfolio", &opts),
            "area bound is part of the key"
        );
        assert_eq!(k1.to_string().len(), 32);
        let (a, b) = k1.halves();
        assert_eq!(
            format!("{a:016x}{b:016x}"),
            k1.to_string(),
            "halves expose the rendered fingerprint words in order"
        );
    }

    #[test]
    fn entry_round_trips_through_json() {
        let p = fig5();
        let entry = CachedEntry::from_result(&solved(&p));
        let back = CachedEntry::from_json(&entry.to_json()).expect("own output parses");
        assert_eq!(entry, back);
    }

    #[test]
    fn rehydrated_entry_is_revalidated() {
        let p = fig5();
        let result = solved(&p);
        let entry = CachedEntry::from_result(&result);
        let again = entry.to_result(&p).expect("valid entry rehydrates");
        assert_eq!(again.synthesis.cost, 4160);
        assert!(again.from_cache);

        // Corrupt the cost: validation rejects the entry.
        let mut bad = entry.clone();
        bad.cost = 1;
        assert!(bad.to_result(&p).is_none(), "cost mismatch is a miss");

        // Wrong problem shape: rejected too.
        let mut tiny = entry;
        tiny.num_ops = 1;
        assert!(tiny.to_result(&p).is_none());
    }

    #[test]
    fn garbage_json_is_a_miss_not_a_panic() {
        for text in ["", "{", "[1,2", "{\"cost\":}", "nonsense", "{\"cost\":1}"] {
            assert!(CachedEntry::from_json(text).is_none(), "{text:?}");
        }
    }

    #[test]
    fn corrupt_disk_entry_is_quarantined_not_served() {
        let dir = std::env::temp_dir().join(format!("troy-cache-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let p = fig5();
        let key = cache_key(&p, "portfolio", &SolveOptions::quick());
        let cache = ResultCache::on_disk(&dir).expect("create cache dir");

        // A torn prefix of a real entry: parses as truncated JSON (fails),
        // must quarantine rather than hit.
        let full = CachedEntry::from_result(&solved(&p)).to_json();
        let torn = &full[..full.len() / 2];
        std::fs::write(dir.join(format!("{key}.json")), torn).unwrap();
        assert!(cache.lookup(&key, &p).is_none(), "torn entry is a miss");
        assert_eq!(cache.quarantined(), 1);
        assert!(
            dir.join(format!("{key}.json.corrupt")).exists(),
            "bad file moved aside"
        );
        assert!(!dir.join(format!("{key}.json")).exists());

        // Well-formed JSON lying about its cost: re-validation rejects and
        // quarantines it too (second lookup is a clean cold miss).
        let mut lying = CachedEntry::from_result(&solved(&p));
        lying.cost = 1;
        std::fs::write(dir.join(format!("{key}.json")), lying.to_json()).unwrap();
        assert!(cache.lookup(&key, &p).is_none(), "lying entry is a miss");
        assert_eq!(cache.quarantined(), 2);
        assert!(
            cache.lookup(&key, &p).is_none(),
            "quarantined file stays gone"
        );
        assert_eq!(cache.quarantined(), 2, "no re-quarantine of a missing file");

        // A correct store after quarantine works normally.
        cache.store(&key, &solved(&p));
        assert_eq!(
            cache
                .lookup(&key, &p)
                .expect("clean store hits")
                .synthesis
                .cost,
            4160
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_leaves_no_temp_files_behind() {
        let dir = std::env::temp_dir().join(format!("troy-cache-atomic-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let p = fig5();
        let key = cache_key(&p, "portfolio", &SolveOptions::quick());
        let cache = ResultCache::on_disk(&dir).expect("create cache dir");
        cache.store(&key, &solved(&p));
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec![format!("{key}.json")], "{names:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_cache_round_trips_and_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("troy-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let p = fig5();
        let key = cache_key(&p, "portfolio", &SolveOptions::quick());

        let cache = ResultCache::on_disk(&dir).expect("create cache dir");
        assert!(cache.lookup(&key, &p).is_none(), "cold cache misses");
        cache.store(&key, &solved(&p));
        assert_eq!(cache.len(), 1);

        // A fresh handle (empty memory layer) must hit via disk.
        let reopened = ResultCache::on_disk(&dir).expect("reopen cache dir");
        assert!(reopened.is_empty());
        let hit = reopened.lookup(&key, &p).expect("warm cache hits");
        assert!(hit.from_cache);
        assert_eq!(hit.synthesis.cost, 4160);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
