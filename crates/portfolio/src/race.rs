//! Racing the four synthesis back ends on one problem.
//!
//! The portfolio's contract is *deterministic* racing: the winner is the
//! minimum of `(cost, backend priority)` over every back end that
//! produced a design, never the first to cross the line. Cancellation
//! only ever removes back ends that cannot win under that order:
//!
//! - the exact solver proving optimality (or infeasibility) cancels
//!   everyone — no rival can beat a proven optimum, and on a cost tie the
//!   exact solver wins by priority;
//! - the ILP prover cancels the two heuristics (they cannot cost less
//!   than a proven optimum and lose ties by priority) but **not** the
//!   exact solver, which would win a tie and may still be racing;
//! - the heuristics never prove anything and cancel nobody.
//!
//! Consequently `jobs = 1` (sequential with skip rules) and `jobs = N`
//! (threads with cancellation) select the same winner whenever the back
//! ends finish within budget, which the determinism suite pins down.

use std::time::{Duration, Instant};

use troyhls::{
    AnnealingSolver, Cancellation, ExactSolver, GreedySolver, IlpSolver, SolveOptions, Synthesis,
    SynthesisError, SynthesisProblem, Synthesizer,
};

/// Budget of the grace pass: when every racer died on an already-expired
/// deadline, one greedy run with this budget (and a fresh token) still
/// produces a valid incumbent, so a 1 ms deadline degrades to a fast
/// best-effort answer instead of an error.
const GRACE_TIME: Duration = Duration::from_secs(5);
const GRACE_NODES: usize = 100_000;

/// One synthesis back end of the portfolio.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Backend {
    /// License-lattice best-first search ([`ExactSolver`]); proves.
    Exact,
    /// The paper's ILP formulation on `troy-ilp` ([`IlpSolver`]); proves.
    Ilp,
    /// Grow/shrink heuristic ([`GreedySolver`]); best effort.
    Greedy,
    /// Simulated annealing seeded from greedy ([`AnnealingSolver`]);
    /// best effort, deterministic per seed.
    Annealing,
}

impl Backend {
    /// All back ends, in priority order (see [`Backend::priority`]).
    pub const ALL: [Backend; 4] = [
        Backend::Exact,
        Backend::Ilp,
        Backend::Greedy,
        Backend::Annealing,
    ];

    /// Stable name used in reports, cache keys and the CLI.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Backend::Exact => "exact",
            Backend::Ilp => "ilp",
            Backend::Greedy => "greedy",
            Backend::Annealing => "annealing",
        }
    }

    /// Parses a [`Backend::name`] string.
    #[must_use]
    pub fn parse(s: &str) -> Option<Backend> {
        Backend::ALL.into_iter().find(|b| b.name() == s)
    }

    /// Tie-break rank for winner selection: lower wins on equal cost.
    /// Provers outrank heuristics so a proven design is preferred among
    /// equals, and the order is fixed so selection is deterministic.
    #[must_use]
    pub fn priority(self) -> usize {
        match self {
            Backend::Exact => 0,
            Backend::Ilp => 1,
            Backend::Greedy => 2,
            Backend::Annealing => 3,
        }
    }

    /// Whether this back end can prove optimality or infeasibility.
    #[must_use]
    pub fn can_prove(self) -> bool {
        matches!(self, Backend::Exact | Backend::Ilp)
    }

    /// Instantiates the back end with its default configuration.
    #[must_use]
    pub fn solver(self) -> Box<dyn Synthesizer> {
        match self {
            Backend::Exact => Box::new(ExactSolver::new()),
            Backend::Ilp => Box::new(IlpSolver::new()),
            Backend::Greedy => Box::new(GreedySolver::new()),
            Backend::Annealing => Box::new(AnnealingSolver::new()),
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Renders a caught panic payload as a message (the two shapes `panic!`
/// actually produces, with a fallback for exotic payloads).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs `backend` on `problem` with the panic firewall every portfolio
/// path uses: a back end that panics yields
/// [`SynthesisError::Panicked`] instead of unwinding into (and aborting)
/// the race, the batch pool or the caller.
///
/// # Errors
///
/// Whatever the back end returns, plus [`SynthesisError::Panicked`] when
/// it panicked.
pub fn synthesize_isolated(
    backend: Backend,
    problem: &SynthesisProblem,
    options: &SolveOptions,
) -> Result<Synthesis, SynthesisError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        backend.solver().synthesize(problem, options)
    }))
    .unwrap_or_else(|payload| Err(SynthesisError::Panicked(panic_message(payload.as_ref()))))
}

/// Outcome of a portfolio run on one problem.
#[derive(Debug, Clone)]
pub struct PortfolioResult {
    /// The winning design. `proven_optimal` is `true` when *any* back end
    /// proved the winning cost optimal, even if the selected design came
    /// from another back end at the same cost.
    pub synthesis: Synthesis,
    /// The back end whose design was selected.
    pub winner: Backend,
    /// `true` when the result is best-effort — the paper's `*` rows.
    /// Always the negation of `synthesis.proven_optimal`.
    pub timed_out: bool,
    /// `true` when the result was served from a [`crate::ResultCache`].
    pub from_cache: bool,
    /// Wall-clock time of this run (zero-ish for cache hits).
    pub elapsed: Duration,
}

/// Which rivals a freshly finished back end may cancel, given what it
/// established. Only rivals that can no longer win selection go.
fn cancellable_rivals(
    finished: Backend,
    outcome: &Result<Synthesis, SynthesisError>,
) -> &'static [Backend] {
    match outcome {
        // A proof of infeasibility ends the race outright.
        Err(SynthesisError::Infeasible) if finished.can_prove() => &Backend::ALL,
        Ok(s) if s.proven_optimal => match finished {
            Backend::Exact => &[Backend::Ilp, Backend::Greedy, Backend::Annealing],
            Backend::Ilp => &[Backend::Greedy, Backend::Annealing],
            _ => &[],
        },
        _ => &[],
    }
}

/// Races all four back ends on `problem` and returns the deterministic
/// winner (minimum `(cost, priority)` over all successful back ends).
///
/// `jobs >= 2` runs the back ends on scoped threads with cooperative
/// cancellation; `jobs = 1` runs them sequentially in priority order,
/// skipping back ends an earlier proof already eliminated — the same
/// selection either way.
///
/// When every back end fails on an expired deadline, one bounded greedy
/// *grace pass* (fresh token) still produces a valid best-effort design
/// marked [`PortfolioResult::timed_out`] rather than an error.
///
/// Every back end runs behind [`synthesize_isolated`]'s panic firewall:
/// a crashing back end becomes a [`SynthesisError::Panicked`] outcome
/// for that lane and the race continues with the survivors.
///
/// # Errors
///
/// [`SynthesisError::Infeasible`] when a proving back end showed no
/// design exists; [`SynthesisError::BudgetExhausted`] when even the
/// grace pass found nothing in time.
pub fn race(
    problem: &SynthesisProblem,
    options: &SolveOptions,
    jobs: usize,
) -> Result<PortfolioResult, SynthesisError> {
    let t0 = Instant::now();
    let outcomes = if jobs >= 2 {
        race_parallel(problem, options)
    } else {
        race_sequential(problem, options)
    };
    select(problem, options, &outcomes, t0)
}

/// Per-backend outcome; `None` when the back end was skipped (sequential
/// mode, eliminated by an earlier proof before it started).
type Outcomes = [Option<Result<Synthesis, SynthesisError>>; 4];

fn race_parallel(problem: &SynthesisProblem, options: &SolveOptions) -> Outcomes {
    use std::sync::Mutex;

    let tokens: Vec<Cancellation> = Backend::ALL
        .iter()
        .map(|_| options.cancel.child())
        .collect();
    let slots: Vec<Mutex<Option<Result<Synthesis, SynthesisError>>>> =
        Backend::ALL.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for (i, backend) in Backend::ALL.into_iter().enumerate() {
            let tokens = &tokens;
            let slots = &slots;
            let opts = options.clone().with_cancel(tokens[i].clone());
            scope.spawn(move || {
                let outcome = synthesize_isolated(backend, problem, &opts);
                for rival in cancellable_rivals(backend, &outcome) {
                    tokens[rival.priority()].cancel();
                }
                *slots[i].lock().expect("outcome slot") = Some(outcome);
            });
        }
    });

    let mut out: Outcomes = [None, None, None, None];
    for (i, slot) in slots.into_iter().enumerate() {
        out[i] = slot.into_inner().expect("outcome slot");
    }
    out
}

fn race_sequential(problem: &SynthesisProblem, options: &SolveOptions) -> Outcomes {
    let mut out: Outcomes = [None, None, None, None];
    let mut eliminated = [false; 4];
    for (i, backend) in Backend::ALL.into_iter().enumerate() {
        if eliminated[i] {
            continue;
        }
        let opts = options.clone().with_cancel(options.cancel.child());
        let outcome = synthesize_isolated(backend, problem, &opts);
        for rival in cancellable_rivals(backend, &outcome) {
            eliminated[rival.priority()] = true;
        }
        out[i] = Some(outcome);
    }
    out
}

fn select(
    problem: &SynthesisProblem,
    options: &SolveOptions,
    outcomes: &Outcomes,
    t0: Instant,
) -> Result<PortfolioResult, SynthesisError> {
    let mut best: Option<(u64, usize)> = None;
    for (i, outcome) in outcomes.iter().enumerate() {
        if let Some(Ok(s)) = outcome {
            let key = (s.cost, i);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
    }

    if let Some((cost, idx)) = best {
        let winner = Backend::ALL[idx];
        let Some(Ok(s)) = &outcomes[idx] else {
            unreachable!("selection index points at a success")
        };
        let proven = outcomes
            .iter()
            .flatten()
            .any(|o| matches!(o, Ok(p) if p.proven_optimal && p.cost == cost));
        return Ok(PortfolioResult {
            synthesis: Synthesis {
                proven_optimal: proven,
                ..s.clone()
            },
            winner,
            timed_out: !proven,
            from_cache: false,
            elapsed: t0.elapsed(),
        });
    }

    // A proof of infeasibility outranks budget failures.
    let proven_infeasible = Backend::ALL.iter().any(|b| {
        b.can_prove()
            && matches!(
                outcomes[b.priority()],
                Some(Err(SynthesisError::Infeasible))
            )
    });
    if proven_infeasible {
        return Err(SynthesisError::Infeasible);
    }

    // Grace pass: every racer fell to the deadline. A fresh token and a
    // small fixed budget keep the promise that a portfolio run returns a
    // valid best incumbent whenever one is findable at all.
    let grace = SolveOptions {
        time_limit: GRACE_TIME,
        node_limit: options.node_limit.min(GRACE_NODES),
        cancel: Cancellation::new(),
        ..options.clone()
    };
    match GreedySolver::new().synthesize(problem, &grace) {
        Ok(s) => Ok(PortfolioResult {
            synthesis: Synthesis {
                proven_optimal: false,
                ..s
            },
            winner: Backend::Greedy,
            timed_out: true,
            from_cache: false,
            elapsed: t0.elapsed(),
        }),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_round_trip() {
        for b in Backend::ALL {
            assert_eq!(Backend::parse(b.name()), Some(b));
            assert_eq!(b.to_string(), b.name());
        }
        assert_eq!(Backend::parse("lingo"), None);
    }

    #[test]
    fn priorities_are_distinct_and_ordered() {
        let ps: Vec<usize> = Backend::ALL.iter().map(|b| b.priority()).collect();
        assert_eq!(ps, vec![0, 1, 2, 3]);
    }

    #[test]
    fn only_provers_cancel() {
        let proven = Ok(Synthesis {
            implementation: troyhls::Implementation::new(1),
            cost: 1,
            proven_optimal: true,
        });
        assert_eq!(cancellable_rivals(Backend::Exact, &proven).len(), 3);
        assert_eq!(cancellable_rivals(Backend::Ilp, &proven).len(), 2);
        assert!(cancellable_rivals(Backend::Greedy, &proven).is_empty());
        assert!(cancellable_rivals(Backend::Annealing, &proven).is_empty());

        let unproven = Ok(Synthesis {
            implementation: troyhls::Implementation::new(1),
            cost: 1,
            proven_optimal: false,
        });
        assert!(cancellable_rivals(Backend::Exact, &unproven).is_empty());

        let infeasible = Err(SynthesisError::Infeasible);
        assert_eq!(cancellable_rivals(Backend::Exact, &infeasible).len(), 4);
        assert!(cancellable_rivals(Backend::Greedy, &infeasible).is_empty());
    }
}
