//! A minimal work-stealing pool over scoped threads.
//!
//! Tasks are identified by index so results come back in input order
//! regardless of which worker ran them — the substrate that makes
//! [`crate::solve_batch`] order-deterministic. Tasks are dealt
//! round-robin into per-worker deques; an idle worker pops from its own
//! queue front and steals from a rival's back, so neighbouring (often
//! similarly sized) tasks stay with their owner and stolen work is the
//! coldest in the victim's queue.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Runs `run(0..tasks)` across up to `jobs` worker threads and returns
/// the results in task order.
///
/// `jobs` is clamped to `1..=tasks`; with one job everything runs inline
/// on the caller's thread in index order. Worker threads are scoped, so
/// `run` may borrow from the caller's stack.
///
/// # Panics
///
/// Propagates a panic from any task (the scope joins all workers first).
pub fn run_indexed<T, F>(jobs: usize, tasks: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.clamp(1, tasks.max(1));
    if jobs <= 1 {
        return (0..tasks).map(run).collect();
    }

    let queues: Vec<Mutex<VecDeque<usize>>> = (0..jobs)
        .map(|w| Mutex::new((0..tasks).filter(|i| i % jobs == w).collect()))
        .collect();
    let slots: Vec<Mutex<Option<T>>> = (0..tasks).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for w in 0..jobs {
            let queues = &queues;
            let slots = &slots;
            let run = &run;
            scope.spawn(move || loop {
                let mut next = queues[w].lock().expect("queue lock").pop_front();
                if next.is_none() {
                    for off in 1..jobs {
                        let victim = (w + off) % jobs;
                        if let Some(i) = queues[victim].lock().expect("queue lock").pop_back() {
                            next = Some(i);
                            break;
                        }
                    }
                }
                let Some(i) = next else { break };
                let out = run(i);
                *slots[i].lock().expect("slot lock") = Some(out);
            });
        }
    });

    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot lock")
                .expect("every task index was executed exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_task_order() {
        for jobs in [1, 2, 4, 7] {
            let out = run_indexed(jobs, 20, |i| i * i);
            assert_eq!(out, (0..20).map(|i| i * i).collect::<Vec<_>>(), "{jobs}");
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
        run_indexed(4, 50, |i| counters[i].fetch_add(1, Ordering::Relaxed));
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "task {i}");
        }
    }

    #[test]
    fn zero_tasks_is_fine() {
        let out: Vec<usize> = run_indexed(4, 0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn more_jobs_than_tasks_is_fine() {
        let out = run_indexed(16, 3, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }
}
