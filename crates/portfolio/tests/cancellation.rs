//! Deadline and cancellation behavior: a portfolio run under an absurdly
//! tight (or already expired) deadline must still return a *valid*
//! best-effort design marked timed-out — the paper's `*` semantics — and
//! must never panic or return garbage.

use std::time::Duration;

use troy_dfg::benchmarks;
use troy_portfolio::race;
use troyhls::{validate, Cancellation, Catalog, Mode, SolveOptions, SynthesisProblem};

fn problem(name: &str, lambda: usize, area: u64) -> SynthesisProblem {
    SynthesisProblem::builder(
        benchmarks::by_name(name).expect("known benchmark"),
        Catalog::paper8(),
    )
    .mode(Mode::DetectionOnly)
    .detection_latency(lambda)
    .area_limit(area)
    .build()
    .expect("table rows are well-formed")
}

fn options_with_deadline(budget: Duration) -> SolveOptions {
    SolveOptions {
        cancel: Cancellation::with_deadline(budget),
        ..SolveOptions::quick()
    }
}

/// The deadline contract: a feasible instance under any deadline — even
/// one already in the past — yields a *valid* design, never a panic or an
/// error. Whether it is the proven optimum (a back end beat the clock) or
/// a best-effort incumbent marked `*` is the machine's business; the two
/// flags must simply agree.
#[track_caller]
fn assert_survives_deadline(name: &str, lambda: usize, area: u64, budget: Duration, jobs: usize) {
    let p = problem(name, lambda, area);
    let r = race(&p, &options_with_deadline(budget), jobs)
        .expect("grace pass guarantees an incumbent on feasible instances");
    assert_eq!(
        r.timed_out, !r.synthesis.proven_optimal,
        "{name}: `*` must mean exactly `not proven`"
    );
    let violations = validate(&p, &r.synthesis.implementation);
    assert!(violations.is_empty(), "{name}: {violations:?}");
    assert_eq!(
        r.synthesis.implementation.license_cost(&p),
        r.synthesis.cost
    );
}

#[test]
fn millisecond_deadline_on_ellipticicass_returns_valid_incumbent() {
    // Table 3 row: ellipticicass, λ = 8, A̅ = 30000.
    assert_survives_deadline("ellipticicass", 8, 30_000, Duration::from_millis(1), 1);
}

#[test]
fn millisecond_deadline_on_fir16_returns_valid_incumbent() {
    // Table 3 row: fir16, λ = 6, A̅ = 200000.
    assert_survives_deadline("fir16", 6, 200_000, Duration::from_millis(1), 1);
}

#[test]
fn millisecond_deadline_with_parallel_race_is_equally_safe() {
    assert_survives_deadline("ellipticicass", 8, 30_000, Duration::from_millis(1), 4);
}

#[test]
fn already_expired_deadline_is_not_a_panic() {
    assert_survives_deadline("fir16", 6, 200_000, Duration::ZERO, 2);
}

#[test]
fn pre_cancelled_token_degrades_to_best_effort() {
    let p = problem("ellipticicass", 8, 30_000);
    let options = SolveOptions {
        cancel: Cancellation::new(),
        ..SolveOptions::quick()
    };
    options.cancel.cancel();
    let r = race(&p, &options, 2).expect("grace pass still runs");
    assert!(r.timed_out);
    assert!(validate(&p, &r.synthesis.implementation).is_empty());
}

#[test]
fn generous_deadline_changes_nothing() {
    let p = problem("polynom", 3, 30_000);
    let plain = race(&p, &SolveOptions::quick(), 1).expect("feasible");
    let fenced = race(&p, &options_with_deadline(Duration::from_secs(3600)), 1).expect("feasible");
    assert_eq!(plain.synthesis.cost, fenced.synthesis.cost);
    assert_eq!(plain.winner, fenced.winner);
    assert_eq!(plain.timed_out, fenced.timed_out);
}
