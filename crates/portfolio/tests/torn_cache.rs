//! The torn-write contract of the on-disk result cache: whatever races a
//! store — cancellation of the solving run, a concurrent reader, a crash
//! simulated by pre-placing a torn file — the cache serves either nothing
//! or a fully valid entry for the key, never a partial or wrong one.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use troy_dfg::benchmarks;
use troy_portfolio::{cache_key, race, PortfolioResult, ResultCache};
use troyhls::{validate, Cancellation, Catalog, Mode, SolveOptions, SynthesisProblem};

fn fig5() -> SynthesisProblem {
    SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
        .mode(Mode::DetectionRecovery)
        .detection_latency(4)
        .recovery_latency(3)
        .area_limit(22_000)
        .build()
        .expect("figure 5 instance is well-formed")
}

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("troy-torn-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A run cancelled while its result is being stored must leave the cache
/// either without the entry or with a fully valid one. The store path is
/// atomic (temp file + rename), so a reader hammering the key during the
/// write observes only miss-or-valid — this test races them for real.
#[test]
fn cancellation_racing_a_store_leaves_miss_or_valid() {
    let dir = scratch("race");
    let cache = ResultCache::on_disk(&dir).expect("create cache dir");
    let p = fig5();
    let options = SolveOptions::quick();
    let key = cache_key(&p, "portfolio", &options);

    // Solve once up front so the stores below are instant and the loop
    // exercises the write path, not the solver.
    let solved = race(&p, &options, 1).expect("figure 5 is feasible");
    assert_eq!(solved.synthesis.cost, 4160);

    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Writer: store the entry over and over; a mid-run cancellation
        // arriving between any two instructions is indistinguishable from
        // the interleavings this loop produces against the reader.
        scope.spawn(|| {
            for _ in 0..200 {
                cache.store(&key, &solved);
            }
            done.store(true, Ordering::Release);
        });
        // Reader: every observation through a *fresh* handle (cold memory
        // layer, so the disk file is what is read) is miss-or-valid.
        scope.spawn(|| {
            while !done.load(Ordering::Acquire) {
                let fresh = ResultCache::on_disk(&dir).expect("reopen cache dir");
                if let Some(hit) = fresh.lookup(&key, &p) {
                    assert_eq!(hit.synthesis.cost, 4160);
                    assert!(validate(&p, &hit.synthesis.implementation).is_empty());
                }
                assert_eq!(fresh.quarantined(), 0, "atomic writes never tear");
            }
        });
    });
    let _ = std::fs::remove_dir_all(&dir);
}

/// A cancelled portfolio run that errors out stores nothing; the next,
/// uncancelled run populates the cache normally.
#[test]
fn cancelled_run_stores_nothing_and_recovers() {
    let dir = scratch("cancelled");
    let cache = ResultCache::on_disk(&dir).expect("create cache dir");
    let p = fig5();

    // An already-cancelled token: the race falls through to its grace
    // pass; whatever comes back, only a *successful* result is stored —
    // mirroring how `solve_one`/the CLI wire cache stores.
    let cancelled = Cancellation::new();
    cancelled.cancel();
    let options = SolveOptions {
        cancel: cancelled,
        time_limit: Duration::from_millis(1),
        ..SolveOptions::quick()
    };
    let key = cache_key(&p, "portfolio", &options);
    if let Ok(r) = race(&p, &options, 1) {
        assert!(validate(&p, &r.synthesis.implementation).is_empty());
        cache.store(&key, &r);
        let hit = cache.lookup(&key, &p).expect("stored entry hits");
        assert!(validate(&p, &hit.synthesis.implementation).is_empty());
    } else {
        assert!(cache.lookup(&key, &p).is_none(), "no store on error");
    }

    // Clean run under the same cache: stores and round-trips.
    let clean = SolveOptions::quick();
    let clean_key = cache_key(&p, "portfolio", &clean);
    let r = race(&p, &clean, 1).expect("figure 5 is feasible");
    cache.store(&clean_key, &r);
    assert_eq!(
        cache
            .lookup(&clean_key, &p)
            .expect("clean entry hits")
            .synthesis
            .cost,
        4160
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A crash mid-write under the *old* non-atomic scheme would leave a torn
/// prefix under the live key. Simulate exactly that file state and check
/// the cache quarantines it instead of serving or re-reading it.
#[test]
fn preexisting_torn_file_is_quarantined() {
    let dir = scratch("prefix");
    std::fs::create_dir_all(&dir).unwrap();
    let p = fig5();
    let options = SolveOptions::quick();
    let key = cache_key(&p, "portfolio", &options);

    let solved = race(&p, &options, 1).expect("figure 5 is feasible");
    // Write a torn prefix directly (bypassing the atomic path), as a
    // crashed non-atomic writer would have.
    let full = serialize(&solved, &p);
    std::fs::write(dir.join(format!("{key}.json")), &full[..full.len() / 3]).unwrap();

    let cache = ResultCache::on_disk(&dir).expect("open over torn state");
    assert!(cache.lookup(&key, &p).is_none());
    assert_eq!(cache.quarantined(), 1);
    assert!(dir.join(format!("{key}.json.corrupt")).exists());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Round-trips a result through a throwaway disk cache to obtain the
/// exact on-disk byte representation.
fn serialize(result: &PortfolioResult, p: &SynthesisProblem) -> String {
    let dir = scratch("serialize");
    let cache = ResultCache::on_disk(&dir).expect("create cache dir");
    let key = cache_key(p, "serialize", &SolveOptions::quick());
    cache.store(&key, result);
    let text = std::fs::read_to_string(dir.join(format!("{key}.json"))).expect("entry written");
    let _ = std::fs::remove_dir_all(&dir);
    text
}
