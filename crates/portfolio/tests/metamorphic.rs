//! Cross-backend metamorphic properties on random small DFGs.
//!
//! The relations that must hold whatever the instance:
//!
//! - cost dominance: the exact optimum never exceeds the annealer's
//!   cost, which never exceeds the greedy cost it was seeded from;
//! - soundness: every design any back end (or the portfolio) emits
//!   passes the independent validator and carries zero `TD`
//!   (design-rule) diagnostics from `troy-analysis`;
//! - mode monotonicity: detection-only protection never costs more than
//!   detection + recovery on the same DFG and catalog.

use proptest::prelude::*;
use std::time::Duration;
use troy_dfg::{random_dfg, RandomDfgConfig};
use troy_portfolio::{race, Backend};
use troyhls::{validate, Catalog, Mode, SolveOptions, SynthesisProblem};

fn opts() -> SolveOptions {
    SolveOptions {
        time_limit: Duration::from_secs(15),
        node_limit: 120_000,
        ..SolveOptions::default()
    }
}

fn build(
    mode: Mode,
    ops: usize,
    depth: usize,
    mul: u8,
    seed: u64,
    slack: usize,
) -> SynthesisProblem {
    let cfg = RandomDfgConfig {
        ops,
        max_depth: depth,
        mul_ratio_percent: mul,
        edge_bias_percent: 80,
    };
    let dfg = random_dfg(&cfg, seed);
    let cp = dfg.critical_path_len();
    SynthesisProblem::builder(dfg, Catalog::paper8())
        .mode(mode)
        .detection_latency(cp + slack)
        .recovery_latency(cp + slack)
        .build()
        .expect("constraints are feasible by construction")
}

fn small_instance() -> impl Strategy<Value = (usize, usize, u8, u64, usize)> {
    (
        2usize..=8,   // ops
        1usize..=3,   // depth
        0u8..=100,    // mul ratio
        any::<u64>(), // seed
        0usize..=2,   // latency slack
    )
}

fn mode_of(pick: bool) -> Mode {
    if pick {
        Mode::DetectionRecovery
    } else {
        Mode::DetectionOnly
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn exact_never_beaten_and_annealing_never_worse_than_greedy(
        (ops, depth, mul, seed, slack) in small_instance(),
        recovery in any::<bool>(),
    ) {
        let p = build(mode_of(recovery), ops, depth, mul, seed, slack);
        let o = opts();
        let exact = Backend::Exact.solver().synthesize(&p, &o);
        let greedy = Backend::Greedy.solver().synthesize(&p, &o);
        let annealing = Backend::Annealing.solver().synthesize(&p, &o);
        if let (Ok(e), Ok(g), Ok(a)) = (&exact, &greedy, &annealing) {
            prop_assert!(e.cost <= a.cost, "exact {} > annealing {}", e.cost, a.cost);
            prop_assert!(a.cost <= g.cost, "annealing {} > greedy {}", a.cost, g.cost);
        }
    }

    #[test]
    fn every_backend_design_validates_and_lints_clean(
        (ops, depth, mul, seed, slack) in small_instance(),
        recovery in any::<bool>(),
    ) {
        let p = build(mode_of(recovery), ops, depth, mul, seed, slack);
        let o = opts();
        for backend in Backend::ALL {
            if let Ok(s) = backend.solver().synthesize(&p, &o) {
                let violations = validate(&p, &s.implementation);
                prop_assert!(violations.is_empty(), "{backend}: {violations:?}");
                let report = troy_analysis::lint(&p, Some(&s.implementation));
                let td: Vec<_> = report
                    .diagnostics
                    .iter()
                    .filter(|d| d.code.as_str().starts_with("TD"))
                    .collect();
                prop_assert!(td.is_empty(), "{backend}: {td:?}");
            }
        }
    }

    #[test]
    fn portfolio_design_validates_and_lints_clean(
        (ops, depth, mul, seed, slack) in small_instance(),
        recovery in any::<bool>(),
    ) {
        let p = build(mode_of(recovery), ops, depth, mul, seed, slack);
        if let Ok(r) = race(&p, &opts(), 1) {
            let violations = validate(&p, &r.synthesis.implementation);
            prop_assert!(violations.is_empty(), "{violations:?}");
            prop_assert_eq!(r.synthesis.implementation.license_cost(&p), r.synthesis.cost);
            let report = troy_analysis::lint(&p, Some(&r.synthesis.implementation));
            let td = report
                .diagnostics
                .iter()
                .filter(|d| d.code.as_str().starts_with("TD"))
                .count();
            prop_assert_eq!(td, 0);
        }
    }

    #[test]
    fn detection_only_never_costs_more_than_full_recovery(
        (ops, depth, mul, seed, slack) in small_instance(),
    ) {
        let detect = build(Mode::DetectionOnly, ops, depth, mul, seed, slack);
        let recover = build(Mode::DetectionRecovery, ops, depth, mul, seed, slack);
        let o = opts();
        let d = race(&detect, &o, 1);
        let r = race(&recover, &o, 1);
        if let (Ok(d), Ok(r)) = (d, r) {
            // Only a meaningful comparison when both costs are proven:
            // best-effort incumbents may order either way.
            if d.synthesis.proven_optimal && r.synthesis.proven_optimal {
                prop_assert!(
                    d.synthesis.cost <= r.synthesis.cost,
                    "detection {} > recovery {}",
                    d.synthesis.cost,
                    r.synthesis.cost
                );
            }
        }
    }
}
