//! Determinism regression suite: the same problems produce byte-identical
//! reports whatever the execution strategy — sequential, parallel pool,
//! cold cache or warm cache. This is what licenses the portfolio as a
//! drop-in replacement for the sequential table harness.

use std::fmt::Write as _;

use troy_dfg::benchmarks;
use troy_portfolio::{solve_batch, BatchConfig, PortfolioResult, ResultCache};
use troyhls::{Catalog, Mode, SolveOptions, SynthesisError, SynthesisProblem};

/// Quick, fully solvable instances (three benchmarks × both modes) so
/// every back end finishes well inside its budget — the regime where the
/// portfolio guarantees determinism.
fn grid() -> Vec<SynthesisProblem> {
    let mut out = Vec::new();
    for name in ["polynom", "diff2", "dtmf"] {
        for mode in [Mode::DetectionOnly, Mode::DetectionRecovery] {
            let dfg = benchmarks::by_name(name).expect("known benchmark");
            let cp = dfg.critical_path_len();
            out.push(
                SynthesisProblem::builder(dfg, Catalog::paper8())
                    .mode(mode)
                    .detection_latency(cp + 1)
                    .recovery_latency(cp + 1)
                    .build()
                    .expect("well-formed"),
            );
        }
    }
    out
}

/// Canonical textual report of a batch: everything observable except
/// wall-clock fields (`elapsed`, `from_cache`), which legitimately vary.
fn report(
    problems: &[SynthesisProblem],
    results: &[Result<PortfolioResult, SynthesisError>],
) -> String {
    let mut out = String::new();
    for (p, r) in problems.iter().zip(results) {
        match r {
            Ok(r) => {
                let stats = r.synthesis.implementation.stats(p);
                let _ = writeln!(
                    out,
                    "{} {} cost={} proven={} timed_out={} winner={} u={} t={} v={} area={}",
                    p.dfg().name(),
                    p.mode(),
                    r.synthesis.cost,
                    r.synthesis.proven_optimal,
                    r.timed_out,
                    r.winner,
                    stats.instances_used,
                    stats.licenses_used,
                    stats.vendors_used,
                    stats.area,
                );
                // Full assignment dump: catches schedule/binding drift
                // that cost-level comparison would miss.
                for (copy, a) in r.synthesis.implementation.iter() {
                    let _ = writeln!(
                        out,
                        "  op{} {:?} cycle={} vendor={}",
                        copy.op.index(),
                        copy.role,
                        a.cycle,
                        a.vendor.index()
                    );
                }
            }
            Err(e) => {
                let _ = writeln!(out, "{} {} error={e}", p.dfg().name(), p.mode());
            }
        }
    }
    out
}

fn config(jobs: usize) -> BatchConfig {
    BatchConfig {
        jobs,
        portfolio: true,
        options: SolveOptions::quick(),
        ..BatchConfig::default()
    }
}

#[test]
fn jobs_1_and_jobs_4_produce_identical_reports() {
    let problems = grid();
    let sequential = report(&problems, &solve_batch(&problems, &config(1), None));
    let parallel = report(&problems, &solve_batch(&problems, &config(4), None));
    assert!(!sequential.is_empty());
    assert_eq!(sequential, parallel);
}

#[test]
fn cold_and_warm_cache_produce_identical_reports() {
    let dir = std::env::temp_dir().join(format!("troy-determinism-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let problems = grid();
    let cache = ResultCache::on_disk(&dir).expect("create cache dir");

    let cold_results = solve_batch(&problems, &config(2), Some(&cache));
    assert!(cold_results
        .iter()
        .all(|r| !r.as_ref().expect("feasible").from_cache));
    let cold = report(&problems, &cold_results);

    // Warm via the same handle (memory layer)…
    let warm_results = solve_batch(&problems, &config(2), Some(&cache));
    assert!(warm_results
        .iter()
        .all(|r| r.as_ref().expect("feasible").from_cache));
    assert_eq!(cold, report(&problems, &warm_results));

    // …and via a fresh handle that can only hit the disk layer.
    let reopened = ResultCache::on_disk(&dir).expect("reopen cache dir");
    let disk_results = solve_batch(&problems, &config(2), Some(&reopened));
    assert!(disk_results
        .iter()
        .all(|r| r.as_ref().expect("feasible").from_cache));
    assert_eq!(cold, report(&problems, &disk_results));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repeated_uncached_runs_are_reproducible() {
    let problems = grid();
    let one = report(&problems, &solve_batch(&problems, &config(3), None));
    let two = report(&problems, &solve_batch(&problems, &config(3), None));
    assert_eq!(one, two);
}
