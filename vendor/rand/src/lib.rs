//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this path
//! dependency provides the (small) subset of the rand 0.10 API the
//! workspace actually uses: [`rngs::StdRng`], [`SeedableRng`] and the
//! [`RngExt`] sampling methods. The generator is splitmix64 — not
//! cryptographic, but statistically solid and fully deterministic per
//! seed, which is all the Monte-Carlo campaigns and property tests need.

/// Core trait for generators: produce the next 64 random bits.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A value samplable uniformly from the generator's raw bit stream.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample(rng: &mut impl RngCore) -> Self;
}

impl Standard for u64 {
    fn sample(rng: &mut impl RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut impl RngCore) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// An unsigned integer type samplable uniformly from a range.
pub trait UniformInt: Copy + PartialOrd {
    /// Widens to the `u64` arithmetic domain.
    fn to_u64(self) -> u64;
    /// Narrows back (caller guarantees the value fits).
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

/// A half-open or inclusive integer range samplable without modulo bias
/// worth worrying about at these sizes.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from(self, rng: &mut impl RngCore) -> T;
}

impl<T: UniformInt> SampleRange<T> for core::ops::Range<T> {
    fn sample_from(self, rng: &mut impl RngCore) -> T {
        assert!(self.start < self.end, "empty range");
        let span = self.end.to_u64().wrapping_sub(self.start.to_u64());
        T::from_u64(self.start.to_u64().wrapping_add(rng.next_u64() % span))
    }
}

impl<T: UniformInt> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from(self, rng: &mut impl RngCore) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let span = hi.to_u64().wrapping_sub(lo.to_u64());
        if span == u64::MAX {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo.to_u64().wrapping_add(rng.next_u64() % (span + 1)))
    }
}

/// Convenience sampling methods, mirroring rand 0.10's `Rng`/`RngExt`.
pub trait RngExt: RngCore {
    /// Draws a uniformly random value of `T`.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 bits of mantissa precision is plenty here.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> RngExt for T {}

/// Generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..9);
            assert!((3..9).contains(&v));
            let w: u64 = rng.random_range(1..=4);
            assert!((1..=4).contains(&w));
        }
    }

    #[test]
    fn full_u64_inclusive_range_works() {
        let mut rng = StdRng::seed_from_u64(1);
        let _: u64 = rng.random_range(1..u64::MAX);
        let _: u64 = rng.random_range(0..=u64::MAX);
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        let heads = (0..2000).filter(|_| rng.random_bool(0.5)).count();
        assert!((800..1200).contains(&heads), "{heads}");
    }
}
