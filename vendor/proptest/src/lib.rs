//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this path crate
//! re-implements the subset of proptest's API that the workspace's
//! property tests use: the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map`, integer-range and tuple strategies, [`collection::vec`],
//! [`prelude::any`], `prop_oneof!`, and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! - **no shrinking** — a failing case panics with the full `Debug` of the
//!   generated input instead of a minimized one;
//! - **fixed deterministic seeding** — cases are derived from the test
//!   name, so runs are reproducible without a persistence file
//!   (`.proptest-regressions` files are ignored).

pub mod strategy {
    //! Strategy trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it.
        fn prop_flat_map<U: Strategy, F: Fn(Self::Value) -> U>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U: Strategy, F: Fn(S::Value) -> U> Strategy for FlatMap<S, F> {
        type Value = U::Value;
        fn generate(&self, rng: &mut TestRng) -> U::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between boxed strategies (backs `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// A union over `arms`; panics if empty.
        #[must_use]
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = (rng.next_u64() % self.arms.len() as u64) as usize;
            self.arms[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (u128::from(rng.next_u64()) % span) as i128;
                    (self.start as i128 + offset) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let offset = (u128::from(rng.next_u64()) % span) as i128;
                    (lo as i128 + offset) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);

    /// Types with a canonical whole-domain strategy (backs [`any`]).
    pub trait ArbitraryValue: Sized {
        /// Draws one unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl ArbitraryValue for u64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64()
        }
    }

    impl ArbitraryValue for u32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl ArbitraryValue for u8 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 56) as u8
        }
    }

    impl ArbitraryValue for usize {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as usize
        }
    }

    impl ArbitraryValue for i32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as i32
        }
    }

    impl ArbitraryValue for i64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as i64
        }
    }

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy over the full domain of `T`.
    #[must_use]
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Admissible length specifications for [`vec`].
    pub trait SizeRange {
        /// Inclusive `(min, max)` length bounds.
        fn bounds(self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for `Vec`s of `element` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Generates vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max - self.min) as u64 + 1;
            let len = self.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Case generation and execution.

    use crate::strategy::Strategy;

    /// Why a test case failed (carries the formatted assertion message).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Wraps an assertion message.
        #[must_use]
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// The generator behind all strategies: splitmix64.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator whose stream is fully determined by `seed`.
        #[must_use]
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// The next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// FNV-1a over the test name: deterministic seeding without a
    /// persistence file.
    fn seed_for(name: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Runs `config.cases` generated cases of `test`; panics with the
    /// generated input on the first failure (no shrinking).
    pub fn run<S: Strategy>(
        config: &ProptestConfig,
        name: &str,
        strategy: &S,
        test: impl Fn(S::Value) -> Result<(), TestCaseError>,
    ) where
        S::Value: core::fmt::Debug,
    {
        let base = seed_for(name);
        for case in 0..config.cases {
            let mut rng = TestRng::from_seed(base ^ (u64::from(case).wrapping_mul(0x9E37)));
            // Generate eagerly so the input can be reported on failure.
            let value = strategy.generate(&mut rng);
            let debugged = format!("{value:?}");
            if let Err(e) = test(value) {
                panic!(
                    "proptest case {case}/{} for `{name}` failed: {e}\n\
                     input: {debugged}",
                    config.cases
                );
            }
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __strategy = ($($strat,)+);
            $crate::test_runner::run(
                &__config,
                stringify!($name),
                &__strategy,
                |($($pat,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(::std::boxed::Box::new($arm)
                as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

/// Asserts inside a property test; failure reports the generated input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {}: {}",
                    stringify!($cond),
                    ::std::format!($($fmt)+)
                ),
            ));
        }
    };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {:?} != {:?}", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {:?} != {:?}: {}",
                    __l,
                    __r,
                    ::std::format!($($fmt)+)
                ),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples((a, b) in (0usize..10, 5u8..=9), c in any::<u64>()) {
            prop_assert!(a < 10);
            prop_assert!((5..=9).contains(&b));
            let _ = c;
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1u8), Just(2u8), (3u8..=4).prop_map(|x| x)]) {
            prop_assert!((1u8..=4).contains(&v), "got {}", v);
        }

        #[test]
        fn vec_lengths(xs in crate::collection::vec(0i32..=5, 2..=6)) {
            prop_assert!(xs.len() >= 2 && xs.len() <= 6);
            prop_assert!(xs.iter().all(|&x| (0..=5).contains(&x)));
        }

        #[test]
        fn flat_map_dependent(xs in (1usize..=4).prop_flat_map(|n| crate::collection::vec(0u8..=9, n))) {
            prop_assert!(!xs.is_empty() && xs.len() <= 4);
        }

        #[test]
        fn early_return_is_allowed(x in 0u8..=1) {
            if x == 0 {
                return Ok(());
            }
            prop_assert_eq!(x, 1);
        }
    }

    #[test]
    #[should_panic(expected = "input:")]
    fn failures_report_the_input() {
        crate::test_runner::run(
            &ProptestConfig::with_cases(4),
            "always_fails",
            &(0u8..=3),
            |_| Err(TestCaseError::fail("boom")),
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let collect = || {
            let mut seen = Vec::new();
            crate::test_runner::run(
                &ProptestConfig::with_cases(8),
                "det",
                &(0u64..=u64::MAX),
                |v| {
                    // Interior mutability not needed: capture via ptr trick.
                    let _ = v;
                    Ok(())
                },
            );
            // run() has no output channel; regenerate directly instead.
            for case in 0..8u32 {
                let mut rng = crate::test_runner::TestRng::from_seed(0xDEAD ^ u64::from(case));
                seen.push(rng.next_u64());
            }
            seen
        };
        assert_eq!(collect(), collect());
    }
}
