//! Offline placeholder for the `serde` crate.
//!
//! The workspace's `serde` cargo feature (on `troyhls` and `troy-dfg`) is
//! **off by default** and exists for downstream users with crates.io
//! access. This placeholder only satisfies dependency *resolution* in the
//! network-less build environment; it ships no derive macros, so enabling
//! the feature against this placeholder will not compile. Swap the
//! workspace `serde` entry back to the registry version to use it for
//! real.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Serialization half of the placeholder API surface.
pub mod ser {
    pub use crate::Serialize;
}

/// Deserialization half of the placeholder API surface.
pub mod de {
    pub use crate::Deserialize;
}
