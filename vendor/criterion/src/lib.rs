//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this path crate
//! provides the small API surface the workspace's benches use —
//! `Criterion::benchmark_group`, `sample_size`, `measurement_time`,
//! `bench_function`, `Bencher::iter` and the `criterion_group!` /
//! `criterion_main!` macros. It times with `std::time::Instant`, prints a
//! one-line summary per benchmark, and performs no statistics, warm-up
//! calibration or plotting.

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value (re-export convenience;
/// benches may also use `std::hint::black_box` directly).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            measurement_time: Duration::from_secs(3),
            _parent: self,
        }
    }

    /// Times a single function outside any group.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        g.finish();
    }
}

/// A group of benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Caps the wall-clock budget of one benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let label = if self.name.is_empty() {
            id
        } else {
            format!("{}/{}", self.name, id)
        };
        let mut best = Duration::MAX;
        let started = Instant::now();
        for _ in 0..self.samples {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            if b.iters > 0 {
                let per_iter = b.elapsed / u32::try_from(b.iters).unwrap_or(u32::MAX);
                best = best.min(per_iter);
            }
            if started.elapsed() > self.measurement_time {
                break;
            }
        }
        if best == Duration::MAX {
            println!("bench {label}: no iterations recorded");
        } else {
            println!(
                "bench {label}: best {best:?}/iter over <= {} samples",
                self.samples
            );
        }
    }

    /// Ends the group (reporting happens per benchmark; kept for API parity).
    pub fn finish(self) {}
}

/// Per-benchmark timing handle passed to the closure.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    // Name kept for criterion API parity; it times, it does not iterate.
    #[allow(clippy::iter_not_returning_iterator)]
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One timed pass per call keeps total runtime proportional to
        // sample_size — adequate for a smoke-test harness.
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Declares a bench group function list (API parity with criterion).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_a_function() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3).measurement_time(Duration::from_millis(50));
        let mut ran = 0u32;
        g.bench_function("noop", |b| b.iter(|| ran += 1));
        g.finish();
        assert!(ran >= 1);
    }

    #[test]
    fn macros_compose() {
        fn target(c: &mut Criterion) {
            c.bench_function("direct", |b| b.iter(|| 1 + 1));
        }
        criterion_group!(benches, target);
        benches();
    }
}
