//! RTL back-end integration: register allocation and Verilog emission on
//! every paper benchmark's synthesized design.

use troy_dfg::benchmarks;
use troyhls::{
    allocate_registers, emit_verilog, netlist_stats, Catalog, ExactSolver, Mode, OpCopy, Role,
    SolveOptions, SynthesisProblem, Synthesizer,
};

fn synthesize_all() -> Vec<(SynthesisProblem, troyhls::Implementation)> {
    benchmarks::paper_suite()
        .into_iter()
        .map(|dfg| {
            let cp = dfg.critical_path_len();
            let p = SynthesisProblem::builder(dfg, Catalog::paper8())
                .mode(Mode::DetectionRecovery)
                .detection_latency(cp + 1)
                .recovery_latency(cp + 1)
                .build()
                .expect("valid");
            let s = ExactSolver::new()
                .synthesize(&p, &SolveOptions::quick())
                .expect("feasible");
            (p, s.implementation)
        })
        .collect()
}

#[test]
fn registers_cover_every_copy_on_every_benchmark() {
    for (p, imp) in synthesize_all() {
        let regs = allocate_registers(&p, &imp);
        assert_eq!(
            regs.lifetimes().len(),
            3 * p.dfg().len(),
            "{}",
            p.dfg().name()
        );
        assert_eq!(regs.register_count(), regs.peak_pressure());
        for op in p.dfg().node_ids() {
            for role in [Role::Nc, Role::Rc, Role::Recovery] {
                assert!(regs.register_of(OpCopy::new(op, role)).is_some());
            }
        }
    }
}

#[test]
fn verilog_emits_structurally_sound_modules_for_all_benchmarks() {
    for (p, imp) in synthesize_all() {
        let name = p.dfg().name().to_owned();
        let rtl = emit_verilog(&p, &imp);
        let stats = netlist_stats(&p, &imp);

        assert!(rtl.contains(&format!("module {name}_troyhls")), "{name}");
        assert!(rtl.ends_with("endmodule\n"), "{name}");
        // Balanced begin/end in the schedule ROM.
        let begins = rtl.matches(": begin").count();
        let ends = rtl.matches("      end").count();
        assert_eq!(begins, ends, "{name}: unbalanced case arms");
        // Ports match the DFG's external interface.
        assert_eq!(
            rtl.matches("input  wire [63:0] pi_").count(),
            stats.input_ports,
            "{name}"
        );
        assert_eq!(
            rtl.matches("output wire [63:0] out_").count(),
            stats.output_ports,
            "{name}"
        );
        // Every physical instance appears as a functional unit.
        assert_eq!(
            rtl.matches("  wire [63:0] fu_").count(),
            stats.functional_units,
            "{name}"
        );
        // Every copy is scheduled exactly once in the ROM.
        for op in p.dfg().node_ids() {
            for role in [Role::Nc, Role::Rc, Role::Recovery] {
                let marker = format!("// {}", OpCopy::new(op, role));
                assert_eq!(rtl.matches(&marker).count(), 1, "{name}: {marker}");
            }
        }
        // The alarm logic and the recovery output mux are present.
        assert!(rtl.contains("trojan_detected <="), "{name}");
        assert!(rtl.contains("trojan_detected ?"), "{name}");
    }
}

#[test]
fn netlist_stats_are_consistent_with_design_stats() {
    for (p, imp) in synthesize_all() {
        let stats = netlist_stats(&p, &imp);
        let design = imp.stats(&p);
        assert_eq!(stats.functional_units, design.instances_used);
        assert_eq!(stats.output_ports, p.dfg().sinks().count());
        assert!(stats.registers >= stats.output_ports * 3 - 2);
    }
}
