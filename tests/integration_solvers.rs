//! Cross-solver agreement: the three back ends bound each other.

use std::time::Duration;

use troy_dfg::benchmarks;
use troyhls::{
    validate, Catalog, ExactSolver, GreedySolver, IlpSolver, Mode, SolveOptions, SynthesisProblem,
    Synthesizer,
};

fn options(secs: u64) -> SolveOptions {
    SolveOptions {
        time_limit: Duration::from_secs(secs),
        ..SolveOptions::default()
    }
}

#[test]
fn figure5_motivational_optimum_is_4160_for_exact_and_ilp() {
    let p = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
        .mode(Mode::DetectionRecovery)
        .detection_latency(4)
        .recovery_latency(3)
        .area_limit(22_000)
        .build()
        .expect("valid");
    let e = ExactSolver::new()
        .synthesize(&p, &options(60))
        .expect("feasible");
    assert_eq!(e.cost, 4160);
    assert!(e.proven_optimal);

    let i = IlpSolver::new()
        .synthesize(&p, &options(120))
        .expect("feasible");
    assert!(validate(&p, &i.implementation).is_empty());
    assert_eq!(
        i.cost, 4160,
        "paper's ILP formulation finds the optimum too"
    );
}

#[test]
fn ilp_and_exact_agree_on_polynom_detection_only() {
    let p = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
        .mode(Mode::DetectionOnly)
        .detection_latency(4)
        .area_limit(40_000)
        .build()
        .expect("valid");
    let e = ExactSolver::new()
        .synthesize(&p, &options(60))
        .expect("feasible");
    let i = IlpSolver::new()
        .synthesize(&p, &options(120))
        .expect("feasible");
    assert_eq!(e.cost, i.cost);
    assert!(validate(&p, &i.implementation).is_empty());
}

#[test]
fn greedy_upper_bounds_exact_across_the_suite() {
    for dfg in benchmarks::paper_suite() {
        let cp = dfg.critical_path_len();
        let name = dfg.name().to_owned();
        let p = SynthesisProblem::builder(dfg, Catalog::paper8())
            .mode(Mode::DetectionRecovery)
            .detection_latency(cp + 1)
            .recovery_latency(cp)
            .build()
            .expect("valid");
        let e = ExactSolver::new()
            .synthesize(&p, &SolveOptions::quick())
            .expect("feasible");
        let g = GreedySolver::new()
            .synthesize(&p, &SolveOptions::quick())
            .expect("feasible");
        assert!(
            g.cost >= e.cost,
            "{name}: greedy {} undercuts exact {}",
            g.cost,
            e.cost
        );
    }
}

#[test]
fn infeasible_instances_are_agreed_upon() {
    // Area too small for even one multiplier.
    let p = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
        .mode(Mode::DetectionOnly)
        .detection_latency(4)
        .area_limit(4_000)
        .build()
        .expect("valid");
    assert!(ExactSolver::new().synthesize(&p, &options(30)).is_err());
    assert!(GreedySolver::new().synthesize(&p, &options(30)).is_err());
    assert!(IlpSolver::new().synthesize(&p, &options(60)).is_err());
}

#[test]
fn loosening_latency_never_raises_the_exact_cost() {
    let base = benchmarks::dtmf();
    let mut last = u64::MAX;
    for lambda in [4usize, 6, 8] {
        let p = SynthesisProblem::builder(base.clone(), Catalog::paper8())
            .mode(Mode::DetectionOnly)
            .detection_latency(lambda)
            .build()
            .expect("valid");
        let s = ExactSolver::new()
            .synthesize(&p, &SolveOptions::quick())
            .expect("feasible");
        assert!(s.cost <= last, "λ={lambda}: cost {} after {}", s.cost, last);
        if s.proven_optimal {
            last = s.cost;
        }
    }
}

#[test]
fn recovery_mode_always_costs_at_least_detection_only() {
    for dfg in benchmarks::paper_suite() {
        let cp = dfg.critical_path_len();
        let name = dfg.name().to_owned();
        let det = SynthesisProblem::builder(dfg.clone(), Catalog::paper8())
            .mode(Mode::DetectionOnly)
            .detection_latency(cp + 1)
            .build()
            .expect("valid");
        let rec = SynthesisProblem::builder(dfg, Catalog::paper8())
            .mode(Mode::DetectionRecovery)
            .detection_latency(cp + 1)
            .recovery_latency(cp + 1)
            .build()
            .expect("valid");
        let sd = ExactSolver::new()
            .synthesize(&det, &SolveOptions::quick())
            .expect("feasible");
        let sr = ExactSolver::new()
            .synthesize(&rec, &SolveOptions::quick())
            .expect("feasible");
        assert!(
            sr.cost >= sd.cost,
            "{name}: recovery {} < detection {}",
            sr.cost,
            sd.cost
        );
    }
}

#[test]
fn exact_and_ilp_agree_on_random_catalogs() {
    // Tiny detection-only instances over random catalogs: the exact
    // license-lattice solver and the paper's ILP must find the same
    // minimum cost.
    let mut dfg = troy_dfg::Dfg::new("tiny");
    let a = dfg.add_op_with(troy_dfg::OpKind::Mul, "a", 2);
    let b = dfg.add_op_with(troy_dfg::OpKind::Mul, "b", 2);
    let c = dfg.add_op_with(troy_dfg::OpKind::Add, "c", 0);
    dfg.add_edge(a, c).expect("acyclic");
    dfg.add_edge(b, c).expect("acyclic");

    for seed in 0..6u64 {
        let catalog = Catalog::random(4, seed);
        let p = SynthesisProblem::builder(dfg.clone(), catalog)
            .mode(Mode::DetectionOnly)
            .detection_latency(3)
            .build()
            .expect("valid");
        let e = ExactSolver::new()
            .synthesize(&p, &options(30))
            .expect("feasible");
        let i = IlpSolver::new()
            .synthesize(&p, &options(90))
            .expect("feasible");
        assert!(validate(&p, &i.implementation).is_empty(), "seed {seed}");
        assert!(e.proven_optimal, "seed {seed}");
        if i.proven_optimal {
            assert_eq!(e.cost, i.cost, "seed {seed}");
        } else {
            assert!(i.cost >= e.cost, "seed {seed}");
        }
    }
}
