//! The mutation oracle: the security prover against seeded corruptions
//! of a Figure 5 optimum.
//!
//! Starting from the exact solver's $4160 `polynom` binding, this suite
//! applies three mutation operators — vendor swaps, cycle shifts, and
//! whole-copy vendor-pair weaves — and demands:
//!
//! - **no false certificates**: every mutant that breaks a design rule
//!   is refused by [`troy_analysis::certify`];
//! - **no false alarms**: every mutant the validator accepts earns a
//!   certificate that [`SecurityCertificate::verify`] re-checks;
//! - **independent witnesses**: diversity-breaking mutants co-fire the
//!   cone prover's own TQ004/TQ005 counterexamples, computed from cone
//!   reachability rather than from the syntactic rule expansion — which
//!   is what lets the prover double as an oracle for solver bugs;
//! - **beyond syntax**: a fully rule-compliant binding whose output
//!   cone is owned by two vendors is still reported (TQ006), the case
//!   no `TD0xx` rule can see.
//!
//! All randomness is a fixed-seed LCG: the mutant set is identical on
//! every run and every machine.

use troy_analysis::{certify, cone_findings, Code, SecurityCertificate};
use troy_bench::motivational_problem;
use troy_dfg::NodeId;
use troyhls::{
    validate, Assignment, ExactSolver, Implementation, Mode, Role, RuleKind, SolveOptions,
    SynthesisProblem, Synthesizer, VendorId, Violation,
};

const FIG5_OPTIMUM: u64 = 4160;

/// Deterministic 64-bit LCG (Knuth's MMIX constants).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 16
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn optimum() -> (SynthesisProblem, Implementation) {
    let p = motivational_problem();
    let s = ExactSolver::new()
        .synthesize(&p, &SolveOptions::default())
        .expect("figure 5 is feasible");
    assert_eq!(s.cost, FIG5_OPTIMUM);
    (p, s.implementation)
}

fn rebind(imp: &mut Implementation, op: NodeId, role: Role, vendor: VendorId) {
    let a = imp.assignment(op, role).expect("optimum is complete");
    imp.assign(
        op,
        role,
        Assignment {
            cycle: a.cycle,
            vendor,
        },
    );
}

/// Checks the oracle contract on one mutant: refusal iff the validator
/// objects, a verifying certificate otherwise. Returns the refusal
/// diagnostics for witness inspection.
fn oracle_verdict(
    problem: &SynthesisProblem,
    mutant: &Implementation,
    label: &str,
) -> Result<SecurityCertificate, Vec<troy_analysis::Diagnostic>> {
    let violations = validate(problem, mutant);
    match certify(problem, mutant) {
        Ok(cert) => {
            assert!(
                violations.is_empty(),
                "{label}: FALSE CERTIFICATE over {violations:?}"
            );
            assert!(cert.verify(problem, mutant), "{label}: certificate drifts");
            Ok(cert)
        }
        Err(diags) => {
            assert!(
                !violations.is_empty(),
                "{label}: false alarm on a rule-clean binding: {diags:?}"
            );
            assert!(!diags.is_empty());
            Err(diags)
        }
    }
}

#[test]
fn every_single_vendor_cone_takeover_is_caught_exhaustively() {
    let (p, base) = optimum();
    let mut takeovers = 0;
    for op in p.dfg().node_ids() {
        let ip_type = p.dfg().kind(op).ip_type();
        for vendor in p.catalog().vendors_for(ip_type) {
            // Hand the op's NC *and* RC copy to one vendor: that vendor
            // alone now corrupts the output undetected.
            let mut mutant = base.clone();
            rebind(&mut mutant, op, Role::Nc, vendor);
            rebind(&mut mutant, op, Role::Rc, vendor);
            takeovers += 1;
            let label = format!("takeover {op} by {vendor}");
            let diags = oracle_verdict(&p, &mutant, &label).expect_err("must refuse");
            let witness = diags
                .iter()
                .find(|d| d.code == Code::ConeSingleVendor)
                .unwrap_or_else(|| panic!("{label}: no TQ004 witness in {diags:?}"));
            assert_eq!(
                witness.location.vendor,
                Some(vendor),
                "{label}: witness names the wrong vendor"
            );
            assert!(
                witness.message.contains("o5"),
                "{label}: witness names the corrupted cone: {}",
                witness.message
            );
        }
    }
    assert!(takeovers >= 10, "mutant space unexpectedly small");
}

#[test]
fn seeded_vendor_swap_mutants_are_flagged_with_independent_witnesses() {
    let (p, base) = optimum();
    let roles = Role::for_mode(p.mode());
    let mut lcg = Lcg(0x7209_2014);
    let (mut breaking, mut benign) = (0usize, 0usize);
    for i in 0..300 {
        let mut mutant = base.clone();
        for _ in 0..=lcg.below(2) {
            let op = NodeId::new(lcg.below(p.dfg().len()));
            let role = roles[lcg.below(roles.len())];
            let ip_type = p.dfg().kind(op).ip_type();
            let sellers: Vec<VendorId> = p.catalog().vendors_for(ip_type).collect();
            rebind(&mut mutant, op, role, sellers[lcg.below(sellers.len())]);
        }
        let label = format!("vendor-swap #{i}");
        let violations = validate(&p, &mutant);
        match oracle_verdict(&p, &mutant, &label) {
            Ok(_) => benign += 1,
            Err(diags) => {
                breaking += 1;
                // The cone prover must reproduce each diversity break
                // from its own reachability analysis, not by trusting
                // the rule expansion.
                let broke = |k: RuleKind| {
                    violations
                        .iter()
                        .any(|v| matches!(v, Violation::SameVendor { rule, .. } if *rule == k))
                };
                if broke(RuleKind::DetectionDuplicate) {
                    assert!(
                        diags.iter().any(|d| d.code == Code::ConeSingleVendor),
                        "{label}: Rule 1 break without a TQ004 cone witness"
                    );
                }
                if broke(RuleKind::DetectionParentChild) || broke(RuleKind::DetectionSiblings) {
                    assert!(
                        diags.iter().any(|d| d.code == Code::ConeTriggerChannel),
                        "{label}: Rule 2 break without a TQ005 channel witness"
                    );
                }
            }
        }
    }
    // The seed must exercise both sides of the oracle.
    assert!(breaking >= 50, "only {breaking} diversity-breaking mutants");
    assert!(benign >= 20, "only {benign} benign mutants");
}

#[test]
fn seeded_cycle_shift_mutants_never_earn_false_certificates() {
    let (p, base) = optimum();
    let roles = Role::for_mode(p.mode());
    let mut lcg = Lcg(0xdac_2014);
    let (mut flagged, mut benign) = (0usize, 0usize);
    for i in 0..200 {
        let mut mutant = base.clone();
        let op = NodeId::new(lcg.below(p.dfg().len()));
        let role = roles[lcg.below(roles.len())];
        let a = mutant.assignment(op, role).expect("complete");
        let shifted = if lcg.below(2) == 0 {
            a.cycle + 1 + lcg.below(3)
        } else {
            a.cycle.saturating_sub(1 + lcg.below(3)).max(1)
        };
        mutant.assign(
            op,
            role,
            Assignment {
                cycle: shifted,
                vendor: a.vendor,
            },
        );
        match oracle_verdict(&p, &mutant, &format!("cycle-shift #{i}")) {
            Ok(_) => benign += 1,
            Err(_) => flagged += 1,
        }
    }
    assert!(flagged >= 50, "only {flagged} schedule-breaking mutants");
    assert!(benign >= 10, "only {benign} benign reschedules");
}

#[test]
fn colluding_pair_weaves_get_tq006_witnesses() {
    // Weave every detection copy of the whole design from one vendor
    // pair. On a 5-op single-cone DFG this also trips Rule 2 — the
    // syntactic rules catch it — but the prover must additionally name
    // the *pair* as a counterexample: the two vendors jointly control
    // all ten detection positions, which no per-edge rule states.
    let (p, base) = optimum();
    let both_types: Vec<VendorId> = p
        .catalog()
        .vendors()
        .filter(|&v| {
            [troy_dfg::IpTypeId::MULTIPLIER, troy_dfg::IpTypeId::ADDER]
                .iter()
                .all(|&t| p.catalog().offering(v, t).is_some())
        })
        .collect();
    assert!(both_types.len() >= 2, "table 1 sells both types twice");
    let mut pairs = 0;
    for (i, &a) in both_types.iter().enumerate() {
        for &b in &both_types[i + 1..] {
            pairs += 1;
            let mut mutant = base.clone();
            for op in p.dfg().node_ids() {
                let flip = op.index() % 2 == 0;
                rebind(&mut mutant, op, Role::Nc, if flip { a } else { b });
                rebind(&mut mutant, op, Role::Rc, if flip { b } else { a });
            }
            let label = format!("pair weave {a}+{b}");
            let findings = cone_findings(&p, &mutant);
            let collapse = findings
                .iter()
                .find(|d| d.code == Code::ConePairCollapse)
                .unwrap_or_else(|| panic!("{label}: no TQ006 pair witness"));
            assert!(
                collapse.message.contains(&a.to_string())
                    && collapse.message.contains(&b.to_string()),
                "{label}: witness must name both vendors: {}",
                collapse.message
            );
            oracle_verdict(&p, &mutant, &label).expect_err("weave breaks Rule 2");
        }
    }
    assert!(pairs >= 1);
}

#[test]
fn rule_compliant_pair_control_is_reported_where_syntax_is_blind() {
    // Two chained multipliers, detection copies woven from two vendors:
    // zero rule violations, yet the pair owns the cone outright. The
    // validator waves it through; the prover must still surface TQ006
    // and record the exposure in the certificate.
    let mut g = troy_dfg::Dfg::new("blindspot");
    let a = g.add_op_with(troy_dfg::OpKind::Mul, "a", 2);
    let b = g.add_op_with(troy_dfg::OpKind::Mul, "b", 1);
    g.add_edge(a, b).unwrap();
    let p = SynthesisProblem::builder(g, troyhls::Catalog::table1())
        .mode(Mode::DetectionOnly)
        .detection_latency(4)
        .build()
        .unwrap();
    let mut imp = Implementation::new(2);
    let asg = |c: usize, v: usize| Assignment {
        cycle: c,
        vendor: VendorId::new(v),
    };
    imp.assign(a, Role::Nc, asg(1, 0));
    imp.assign(b, Role::Nc, asg(2, 1));
    imp.assign(a, Role::Rc, asg(2, 1));
    imp.assign(b, Role::Rc, asg(3, 0));
    assert!(
        validate(&p, &imp).is_empty(),
        "the weave is fully rule-compliant"
    );
    let cert = certify(&p, &imp).expect("warnings do not block certification");
    assert_eq!(
        cert.pair_exposed_cones, 1,
        "the certificate must record the exposed cone"
    );
    let findings = cone_findings(&p, &imp);
    assert!(
        findings.iter().any(|d| d.code == Code::ConePairCollapse),
        "TQ006 missing: {findings:?}"
    );
    // Contrast: the Figure 5 optimum has zero exposed cones, so for it
    // the no-colluding-pair claim is proven, not merely unviolated.
    let (fig5, opt) = optimum();
    assert_eq!(certify(&fig5, &opt).unwrap().pair_exposed_cones, 0);
}
