//! Structural invariants of the regenerated paper tables. Absolute dollars
//! differ from the paper (its 8-vendor price list is not published); the
//! *shape* — who costs more, where infeasibility bites — must hold.

use std::collections::BTreeMap;

use troy_bench::{motivational_problem, problem_for, run_row, table3_specs, table4_specs};
use troyhls::{validate, ExactSolver, SolveOptions, Synthesizer};

fn quick() -> SolveOptions {
    SolveOptions::quick()
}

#[test]
fn figure5_row_reproduces_4160_exactly() {
    let p = motivational_problem();
    let s = ExactSolver::new()
        .synthesize(&p, &quick())
        .expect("feasible");
    assert_eq!(s.cost, 4160);
    assert!(s.proven_optimal);
}

#[test]
fn all_24_table_rows_produce_valid_designs() {
    for spec in table3_specs().iter().chain(table4_specs().iter()) {
        let r = run_row(spec, &quick());
        let imp = r
            .implementation
            .unwrap_or_else(|| panic!("{} λ={} found no design", spec.benchmark, spec.lambda));
        let p = problem_for(spec);
        let vs = validate(&p, &imp);
        assert!(
            vs.is_empty(),
            "{} λ={}: {vs:?}",
            spec.benchmark,
            spec.lambda
        );
        let stats = r.stats.unwrap();
        assert!(stats.area <= spec.area);
    }
}

#[test]
fn recovery_always_costs_more_than_detection_per_benchmark() {
    // The paper's headline conclusion: detection-only designs
    // underestimate the diversity a recoverable design needs.
    let mut det_best: BTreeMap<&str, u64> = BTreeMap::new();
    for spec in table3_specs() {
        let r = run_row(&spec, &quick());
        if let Some(stats) = r.stats {
            let e = det_best.entry(spec.benchmark).or_insert(u64::MAX);
            *e = (*e).min(stats.license_cost);
        }
    }
    for spec in table4_specs() {
        let r = run_row(&spec, &quick());
        if let Some(stats) = r.stats {
            let det = det_best[spec.benchmark];
            assert!(
                stats.license_cost > det,
                "{}: recovery {} vs detection {}",
                spec.benchmark,
                stats.license_cost,
                det
            );
        }
    }
}

#[test]
fn recovery_needs_at_least_as_many_vendors() {
    for (s3, s4) in table3_specs().iter().zip(table4_specs().iter()) {
        assert_eq!(s3.benchmark, s4.benchmark);
        let r3 = run_row(s3, &quick());
        let r4 = run_row(s4, &quick());
        if let (Some(a), Some(b)) = (r3.stats, r4.stats) {
            assert!(
                b.licenses_used >= a.licenses_used,
                "{}: t {} -> {}",
                s3.benchmark,
                a.licenses_used,
                b.licenses_used
            );
        }
    }
}

#[test]
fn paper_rows_agree_on_the_same_shape() {
    // In the paper too, every benchmark's Table 4 mc exceeds its Table 3
    // mc — sanity-check the transcribed constants themselves.
    let t3: BTreeMap<&str, u64> = table3_specs()
        .into_iter()
        .map(|s| (s.benchmark, s.paper.mc))
        .fold(BTreeMap::new(), |mut m, (k, v)| {
            let e = m.entry(k).or_insert(u64::MAX);
            *e = (*e).min(v);
            m
        });
    for s in table4_specs() {
        assert!(
            s.paper.mc > t3[s.benchmark],
            "{}: paper T4 {} vs T3 {}",
            s.benchmark,
            s.paper.mc,
            t3[s.benchmark]
        );
    }
}
