//! Campaign-engine integration: determinism under parallelism, the Fig. 3
//! latched-payload contrast, trigger-rarity edge cases, the clean negative
//! control across the benchmark suite, and witness replay.
//!
//! Every test pins its master seed, so each assertion is a statement about
//! one exactly reproducible campaign, not a statistical bound.

use troy_sim::{
    naive_reexecution_recovery_rate, replay_cell, run_campaign, run_grid, CampaignConfig,
    CellOutcome, CorpusConfig, DesignUnderTest, GridConfig, PayloadKind,
};
use troyhls::{ExactSolver, GreedySolver, Mode, SolveOptions};

fn designs(name: &str, modes: &[Mode]) -> Vec<DesignUnderTest> {
    modes
        .iter()
        .map(|&m| {
            DesignUnderTest::synthesize(name, m, &ExactSolver::new(), &SolveOptions::quick())
                .unwrap_or_else(|e| panic!("synthesize {name}: {e}"))
        })
        .collect()
}

/// Satellite 1: the report is a pure function of the seed — byte-identical
/// JSON whether the grid runs on one worker or several, across eight seeds.
#[test]
fn report_is_identical_across_parallelism_for_eight_seeds() {
    let d = designs("diff2", &[Mode::DetectionOnly, Mode::DetectionRecovery]);
    for seed in [1, 2, 3, 5, 8, 13, 21, 34] {
        let config = GridConfig {
            seed,
            steps: 5,
            ..GridConfig::default()
        };
        let serial = run_grid(&d, &config, 1);
        let parallel = run_grid(&d, &config, 4);
        assert_eq!(
            serial.to_json(false),
            parallel.to_json(false),
            "seed {seed}: report depends on worker count"
        );
        assert_eq!(serial.seed, seed);
    }
}

/// Rate aggregation over a cell subset.
fn rate(cells: &[&CellOutcome]) -> (usize, usize) {
    let corrupted = cells.iter().map(|c| c.corrupted).sum();
    let detected = cells.iter().map(|c| c.detected).sum();
    (detected, corrupted)
}

/// Satellite 2: the Fig. 3 contrast. A latched payload persists once
/// fired, so in `DetectionRecovery` mode the monitor keeps flagging it,
/// while `DetectionOnly` designs let corrupting steps through; and
/// re-binding recovery — built for memory-less Trojans — demonstrably
/// degrades on latched ones while staying perfect on the paper's
/// memory-less rare-trigger slice.
#[test]
fn latched_payloads_show_the_fig3_mode_contrast() {
    let mut d = designs("polynom", &[Mode::DetectionOnly, Mode::DetectionRecovery]);
    d.extend(designs(
        "diff2",
        &[Mode::DetectionOnly, Mode::DetectionRecovery],
    ));
    let config = GridConfig {
        seed: 0xF163,
        steps: 24,
        ..GridConfig::default()
    };
    let report = run_grid(&d, &config, 2);

    let slice = |mode: Mode, kind: fn(PayloadKind) -> bool| -> Vec<&CellOutcome> {
        report
            .cells
            .iter()
            .filter(|c| c.mode == mode && kind(c.spec.kind))
            .collect()
    };
    let latched = |k: PayloadKind| k == PayloadKind::Latched;
    let memoryless = PayloadKind::is_memoryless;

    // Detection: recovery-mode designs flag strictly more of the latched
    // corruption than detection-only designs at this seed.
    let (rec_det, rec_cor) = rate(&slice(Mode::DetectionRecovery, latched));
    let (det_det, det_cor) = rate(&slice(Mode::DetectionOnly, latched));
    assert!(rec_cor > 0 && det_cor > 0, "latched cells must corrupt");
    let rec_rate = rec_det as f64 / rec_cor as f64;
    let det_rate = det_det as f64 / det_cor as f64;
    assert!(
        rec_rate > det_rate,
        "latched detection: rec {rec_rate:.4} must beat det {det_rate:.4}"
    );
    assert!(rec_rate > 0.9, "latched rec-mode detection {rec_rate:.4}");

    // Recovery: the memory-less rare-trigger slice (the paper's scope)
    // recovers perfectly; latched cells of the same rarity do not.
    let rare_memoryless: Vec<&CellOutcome> = report
        .cells
        .iter()
        .filter(|c| {
            c.mode == Mode::DetectionRecovery
                && memoryless(c.spec.kind)
                && c.spec.coalition == 1
                && c.spec.rarity_bits >= 12
        })
        .collect();
    let rare_latched: Vec<&CellOutcome> = report
        .cells
        .iter()
        .filter(|c| {
            c.mode == Mode::DetectionRecovery
                && latched(c.spec.kind)
                && c.spec.coalition == 1
                && c.spec.rarity_bits >= 12
        })
        .collect();
    assert!(
        rare_memoryless.iter().any(|c| c.recovered > 0),
        "memory-less rare cells must exercise recovery"
    );
    assert!(
        rare_memoryless.iter().all(|c| c.recovery_failed == 0),
        "re-binding recovery is perfect on memory-less rare triggers"
    );
    assert!(
        rare_latched
            .iter()
            .map(|c| c.recovery_failed)
            .sum::<usize>()
            > 0,
        "latched payloads must defeat some re-binding recoveries"
    );

    // The hard guarantee holds over the whole paired grid.
    assert!(report.guarantee_escapes().is_empty());
}

/// Satellite 3a: `rarity_bits = 0` (a trigger that always fires) is a
/// well-defined corner — plenty of activations, finite rates.
#[test]
fn zero_rarity_triggers_always_fire_and_rates_stay_finite() {
    let d = designs("diff2", &[Mode::DetectionRecovery]);
    let config = GridConfig {
        seed: 0xBEE5,
        steps: 12,
        corpus: CorpusConfig {
            rarity_levels: vec![0],
            payload_kinds: vec![PayloadKind::XorMask, PayloadKind::AddOffset],
            coalitions: vec![1],
            sequential_triggers: vec![false],
            per_stratum: 2,
        },
        ..GridConfig::default()
    };
    let report = run_grid(&d, &config, 1);
    assert!(!report.cells.is_empty());
    for c in &report.cells {
        assert_eq!(
            c.activations, c.steps,
            "{}: a mask-0 combinational trigger fires every step",
            c.id
        );
    }
    for r in [
        report.detection_rate(None),
        report.recovery_rate(),
        report.false_alarm_rate(),
    ] {
        assert!(r.is_finite() && (0.0..=1.0).contains(&r), "rate {r}");
    }
}

/// Satellite 3b: maximal-mask triggers (`rarity_bits >= 64` saturates to a
/// full-word match) never fire on random stimulus, fire when targeted, and
/// — after the `rarity_mask` unification — the naive-re-execution baseline
/// agrees with the campaign path at the edge instead of silently using a
/// 2^63-1 mask.
#[test]
fn maximal_rarity_edge_is_consistent_across_both_campaign_paths() {
    let d = designs("diff2", &[Mode::DetectionRecovery]);
    let corpus = CorpusConfig {
        rarity_levels: vec![64],
        payload_kinds: vec![PayloadKind::XorMask],
        coalitions: vec![1],
        sequential_triggers: vec![false],
        per_stratum: 2,
    };

    // Untargeted: a 64-bit exact-match trigger never fires on random
    // inputs; the report degenerates to perfect rates without NaNs.
    let untargeted = run_grid(
        &d,
        &GridConfig {
            seed: 0xFACE,
            steps: 12,
            targeted_percent: 0,
            corpus: corpus.clone(),
            ..GridConfig::default()
        },
        1,
    );
    assert_eq!(
        untargeted
            .cells
            .iter()
            .map(|c| c.activations)
            .sum::<usize>(),
        0
    );
    assert!((untargeted.detection_rate(None) - 1.0).abs() < f64::EPSILON);
    assert!((untargeted.recovery_rate() - 1.0).abs() < f64::EPSILON);
    assert!(untargeted.false_alarm_rate().abs() < f64::EPSILON);

    // Targeted: crafted inputs reproduce the full 64-bit pattern, so the
    // trigger demonstrably can fire at the edge.
    let targeted = run_grid(
        &d,
        &GridConfig {
            seed: 0xFACE,
            steps: 12,
            targeted_percent: 100,
            corpus,
            ..GridConfig::default()
        },
        1,
    );
    assert!(
        targeted.cells.iter().map(|c| c.activations).sum::<usize>() > 0,
        "targeted maximal-mask triggers must fire"
    );

    // The legacy single-design campaign at the same edge: the rule-based
    // re-binding beats naive re-execution, and both paths now derive the
    // same full-word mask (the old clamp made them disagree here).
    let design = &d[0];
    let config = CampaignConfig {
        runs: 80,
        seed: 0xFACE,
        rarity_bits: 64,
        targeted_percent: 100,
        ..CampaignConfig::default()
    };
    let result = run_campaign(&design.problem, &design.implementation, &config);
    assert!(result.corrupted > 0, "targeted edge campaign must corrupt");
    let naive = naive_reexecution_recovery_rate(&design.problem, &design.implementation, &config);
    assert!(naive.is_finite() && (0.0..=1.0).contains(&naive));
    assert!(
        result.recovery_rate() > naive,
        "re-binding ({:.4}) must beat naive re-execution ({naive:.4}) at the edge",
        result.recovery_rate()
    );
}

/// Satellite 4: the clean negative control — a Trojan-free corpus slice
/// across every paper benchmark reports zero activations, mismatches and
/// recoveries, pinning the false-alarm rate of the NC/RC comparator at
/// exactly zero.
#[test]
fn clean_corpus_is_spotless_across_the_benchmark_suite() {
    let clean = CorpusConfig {
        rarity_levels: vec![0],
        payload_kinds: vec![PayloadKind::Clean],
        coalitions: vec![1],
        sequential_triggers: vec![false],
        per_stratum: 2,
    };
    let solver = GreedySolver::new();
    let options = SolveOptions::quick();
    let mut all = Vec::new();
    for name in ["polynom", "diff2", "dtmf", "mof2", "ellipticicass", "fir16"] {
        for mode in [Mode::DetectionOnly, Mode::DetectionRecovery] {
            all.push(
                DesignUnderTest::synthesize(name, mode, &solver, &options)
                    .unwrap_or_else(|e| panic!("{e}")),
            );
        }
    }
    let config = GridConfig {
        seed: 0xC1EA,
        steps: 8,
        corpus: clean,
        ..GridConfig::default()
    };
    let report = run_grid(&all, &config, 2);
    assert_eq!(report.cells.len(), 2 * all.len());
    for c in &report.cells {
        assert_eq!(c.spec.kind, PayloadKind::Clean);
        assert_eq!(
            (
                c.activations,
                c.corrupted,
                c.detected,
                c.missed,
                c.false_alarms,
                c.recovered,
                c.recovery_failed
            ),
            (0, 0, 0, 0, 0, 0, 0),
            "{}: clean control must be spotless",
            c.id
        );
    }
    assert!(report.false_alarm_rate().abs() < f64::EPSILON);
    assert!(report.escapes().is_empty());
}

/// Tentpole invariant: every escape carries a `(seed, cell-id)` witness
/// that replays to the identical outcome in isolation.
#[test]
fn escape_witnesses_replay_bit_for_bit() {
    // Detection-only designs with common triggers miss corrupting steps by
    // design (NC and RC corrupt identically) — a reliable witness source.
    let d = designs("polynom", &[Mode::DetectionOnly]);
    let config = GridConfig {
        seed: 0x5EED,
        steps: 16,
        corpus: CorpusConfig {
            rarity_levels: vec![0, 4],
            payload_kinds: vec![PayloadKind::XorMask],
            coalitions: vec![1, 2],
            sequential_triggers: vec![false],
            per_stratum: 1,
        },
        ..GridConfig::default()
    };
    let report = run_grid(&d, &config, 1);
    let escapes = report.escapes();
    assert!(
        !escapes.is_empty(),
        "detection-only common triggers must produce escapes"
    );
    // Nothing here is in the guarantee slice: DetectionOnly cells never are.
    assert!(report.guarantee_escapes().is_empty());

    for witness in escapes.iter().take(3) {
        assert_eq!(witness.seed, config.seed);
        let replayed = replay_cell(&d, &config, &witness.cell)
            .unwrap_or_else(|| panic!("witness names a grid cell: {}", witness.cell));
        let original = report
            .cells
            .iter()
            .find(|c| c.id == witness.cell)
            .expect("witness cell in report");
        assert!(
            replayed.escape_steps.contains(&witness.step),
            "replay of {} must reproduce the escape at step {}",
            witness.cell,
            witness.step
        );
        let strip = |c: &CellOutcome| CellOutcome {
            elapsed_us: 0,
            ..c.clone()
        };
        assert_eq!(strip(&replayed), strip(original));
    }
}
