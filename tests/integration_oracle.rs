//! The Figure 5 oracle: one known-good instance, one known-good answer,
//! every path through the system.
//!
//! The paper works its motivational example end to end — `polynom` on
//! the Table 1 catalog with λ_det = 4, λ_rec = 3, A̅ = 22000 — and
//! reports the optimum license bill **$4160**. Every synthesis path this
//! workspace offers (all four back ends plus the racing portfolio) must
//! land on exactly that number with a fully valid design; any drift in a
//! solver, the constraint expansion or the portfolio selection shows up
//! here first.

use troy_bench::motivational_problem;
use troy_portfolio::{race, solve_batch, Backend, BatchConfig};
use troyhls::{validate, SolveOptions, SynthesisProblem};

const FIG5_OPTIMUM: u64 = 4160;

fn check(problem: &SynthesisProblem, label: &str, cost: u64, imp: &troyhls::Implementation) {
    assert_eq!(cost, FIG5_OPTIMUM, "{label}: wrong Figure 5 cost");
    let violations = validate(problem, imp);
    assert!(violations.is_empty(), "{label}: {violations:?}");
    assert_eq!(
        imp.license_cost(problem),
        FIG5_OPTIMUM,
        "{label}: reported cost disagrees with the implementation"
    );
    // Every optimum must also earn a security certificate from the
    // independent cone prover: no single vendor and no colluding pair
    // controls both detection copies of the (single) output cone.
    let cert = troy_analysis::certify(problem, imp)
        .unwrap_or_else(|d| panic!("{label}: prover rejected the optimum: {d:?}"));
    assert!(cert.single_vendor_safe, "{label}: uncertified");
    assert_eq!(cert.min_collusion_size, 2, "{label}");
    assert_eq!(
        cert.pair_exposed_cones, 0,
        "{label}: a vendor pair controls the polynom cone"
    );
    assert!(
        cert.verify(problem, imp),
        "{label}: certificate must verify"
    );
}

#[test]
fn every_backend_reproduces_the_figure5_optimum() {
    let problem = motivational_problem();
    // Generous budget: the ILP prover needs ~90 s to close the gap on an
    // unoptimized (dev-profile) build, and this test demands the proof.
    let options = SolveOptions {
        time_limit: std::time::Duration::from_secs(600),
        node_limit: usize::MAX,
        ..SolveOptions::default()
    };
    for backend in Backend::ALL {
        let s = backend
            .solver()
            .synthesize(&problem, &options)
            .unwrap_or_else(|e| panic!("{backend}: figure 5 is feasible, got {e}"));
        check(&problem, backend.name(), s.cost, &s.implementation);
        if backend.can_prove() {
            assert!(s.proven_optimal, "{backend}: provers must prove figure 5");
        }
    }
}

#[test]
fn portfolio_race_reproduces_the_figure5_optimum() {
    let problem = motivational_problem();
    for jobs in [1, 4] {
        let r = race(&problem, &SolveOptions::default(), jobs).expect("figure 5 is feasible");
        check(
            &problem,
            &format!("portfolio jobs={jobs}"),
            r.synthesis.cost,
            &r.synthesis.implementation,
        );
        assert!(r.synthesis.proven_optimal, "the race includes two provers");
        assert!(!r.timed_out);
        assert_eq!(
            r.winner,
            Backend::Exact,
            "on a tie of proven optima, priority selects the exact solver"
        );
    }
}

#[test]
fn batched_portfolio_reproduces_the_figure5_optimum() {
    let problems = vec![motivational_problem()];
    let results = solve_batch(&problems, &BatchConfig::default(), None);
    let r = results[0].as_ref().expect("figure 5 is feasible");
    check(
        &problems[0],
        "batch",
        r.synthesis.cost,
        &r.synthesis.implementation,
    );
}
