//! End-to-end rule compliance: every solver output on every benchmark must
//! satisfy all four design rules plus scheduling/area constraints, as
//! checked by the independent validator.

use troy_dfg::benchmarks;
use troyhls::{
    diversity_constraints, validate, Catalog, ExactSolver, GreedySolver, Mode, Role, SolveOptions,
    SynthesisProblem, Synthesizer,
};

fn problems() -> Vec<SynthesisProblem> {
    let mut out = Vec::new();
    for dfg in benchmarks::paper_suite() {
        let cp = dfg.critical_path_len();
        for mode in [Mode::DetectionOnly, Mode::DetectionRecovery] {
            out.push(
                SynthesisProblem::builder(dfg.clone(), Catalog::paper8())
                    .mode(mode)
                    .detection_latency(cp + 1)
                    .recovery_latency(cp + 1)
                    .build()
                    .expect("valid"),
            );
        }
    }
    out
}

#[test]
fn exact_solver_designs_satisfy_every_rule() {
    for problem in problems() {
        let s = ExactSolver::new()
            .synthesize(&problem, &SolveOptions::quick())
            .unwrap_or_else(|e| panic!("{} {}: {e}", problem.dfg().name(), problem.mode()));
        let violations = validate(&problem, &s.implementation);
        assert!(
            violations.is_empty(),
            "{} {}: {violations:?}",
            problem.dfg().name(),
            problem.mode()
        );
    }
}

#[test]
fn greedy_solver_designs_satisfy_every_rule() {
    for problem in problems() {
        let s = GreedySolver::new()
            .synthesize(&problem, &SolveOptions::quick())
            .unwrap_or_else(|e| panic!("{} {}: {e}", problem.dfg().name(), problem.mode()));
        let violations = validate(&problem, &s.implementation);
        assert!(
            violations.is_empty(),
            "{} {}: {violations:?}",
            problem.dfg().name(),
            problem.mode()
        );
    }
}

#[test]
fn every_diversity_constraint_is_respected_pairwise() {
    // Beyond the validator: re-check the raw constraint list directly.
    for problem in problems() {
        let s = ExactSolver::new()
            .synthesize(&problem, &SolveOptions::quick())
            .expect("feasible");
        for dc in diversity_constraints(&problem) {
            let a = s.implementation.assignment_of(dc.a).expect("complete");
            let b = s.implementation.assignment_of(dc.b).expect("complete");
            assert_ne!(
                a.vendor,
                b.vendor,
                "{}: {} vs {} ({})",
                problem.dfg().name(),
                dc.a,
                dc.b,
                dc.rule
            );
        }
    }
}

#[test]
fn recovery_designs_never_reuse_detection_vendors_per_op() {
    for problem in problems()
        .into_iter()
        .filter(|p| p.mode() == Mode::DetectionRecovery)
    {
        let s = ExactSolver::new()
            .synthesize(&problem, &SolveOptions::quick())
            .expect("feasible");
        for op in problem.dfg().node_ids() {
            let nc = s.implementation.assignment(op, Role::Nc).unwrap().vendor;
            let rc = s.implementation.assignment(op, Role::Rc).unwrap().vendor;
            let r = s
                .implementation
                .assignment(op, Role::Recovery)
                .unwrap()
                .vendor;
            assert_ne!(nc, rc);
            assert_ne!(r, nc);
            assert_ne!(r, rc);
        }
    }
}

#[test]
fn phases_are_time_disjoint() {
    for problem in problems()
        .into_iter()
        .filter(|p| p.mode() == Mode::DetectionRecovery)
    {
        let s = ExactSolver::new()
            .synthesize(&problem, &SolveOptions::quick())
            .expect("feasible");
        let det = problem.detection_latency();
        for (copy, a) in s.implementation.iter() {
            match copy.role {
                Role::Nc | Role::Rc => assert!(a.cycle <= det),
                Role::Recovery => assert!(a.cycle > det),
            }
        }
    }
}

#[test]
fn stats_are_internally_consistent() {
    for problem in problems() {
        let s = ExactSolver::new()
            .synthesize(&problem, &SolveOptions::quick())
            .expect("feasible");
        let stats = s.implementation.stats(&problem);
        assert_eq!(stats.license_cost, s.cost);
        assert!(stats.vendors_used <= stats.licenses_used);
        assert!(stats.licenses_used <= stats.instances_used);
        assert!(stats.area <= problem.area_limit());
        assert_eq!(stats.area, s.implementation.area(&problem));
    }
}
