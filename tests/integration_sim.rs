//! Synthesize → simulate: the designs produced by the solver actually
//! detect and recover injected Trojans at run time, across the full
//! benchmark suite.

use troy_dfg::{benchmarks, IpTypeId};
use troy_sim::{
    golden_eval, run_campaign, CampaignConfig, CoreLibrary, InputVector, Payload, PhaseController,
    Trigger, Trojan,
};
use troyhls::{
    Catalog, ExactSolver, Implementation, License, Mode, Role, SolveOptions, SynthesisProblem,
    Synthesizer,
};

fn synthesize(name: &str) -> (SynthesisProblem, Implementation) {
    let dfg = benchmarks::by_name(name).expect("known benchmark");
    let cp = dfg.critical_path_len();
    let p = SynthesisProblem::builder(dfg, Catalog::paper8())
        .mode(Mode::DetectionRecovery)
        .detection_latency(cp + 1)
        .recovery_latency(cp + 1)
        .build()
        .expect("valid");
    let s = ExactSolver::new()
        .synthesize(&p, &SolveOptions::quick())
        .expect("feasible");
    (p, s.implementation)
}

/// For every benchmark: infect each op's NC multiplier/adder product with a
/// trigger on that op's real operand, and require detection + recovery.
#[test]
fn every_benchmark_detects_and_recovers_crafted_trojans() {
    for name in ["polynom", "diff2", "dtmf", "mof2", "ellipticicass", "fir16"] {
        let (p, imp) = synthesize(name);
        let dfg = p.dfg();
        let iv = InputVector::from_seed(dfg, 0xFACE);
        let mut exercised = 0;
        for op in dfg.node_ids() {
            // Craft a trigger on the op's first operand; for interior ops
            // that is a producer's output value.
            let golden = golden_eval(dfg, &iv);
            let operand = match dfg.preds(op) {
                [] if dfg.node(op).primary_inputs() > 0 => iv.values(op)[0],
                [] => continue,
                [first, ..] => golden[first.index()],
            };
            let vendor = imp.assignment(op, Role::Nc).expect("complete").vendor;
            let mut lib = CoreLibrary::new();
            lib.infect(
                License {
                    vendor,
                    ip_type: dfg.kind(op).ip_type(),
                },
                Trojan {
                    trigger: Trigger::on_operand_a(operand),
                    payload: Payload::AddOffset(0x5555_0000),
                },
            );
            let mut ctrl = PhaseController::new(&p, &imp, &lib);
            let report = ctrl.run(&iv);
            if !report.corrupted() {
                // Corruption can be masked before any sink (e.g. behind a
                // comparison); nothing to detect then.
                continue;
            }
            exercised += 1;
            assert!(report.mismatch, "{name}/{op}: corruption must be detected");
            assert!(
                report.delivered_correct(),
                "{name}/{op}: recovery must heal the output"
            );
        }
        assert!(exercised >= dfg.len() / 2, "{name}: too few ops exercised");
    }
}

/// Clean libraries never trip the monitor (no false positives).
#[test]
fn no_false_positives_on_clean_hardware() {
    for name in ["polynom", "diff2", "fir16"] {
        let (p, imp) = synthesize(name);
        let lib = CoreLibrary::new();
        let mut ctrl = PhaseController::new(&p, &imp, &lib);
        for seed in 0..25u64 {
            let report = ctrl.run(&InputVector::from_seed(p.dfg(), seed));
            assert!(!report.mismatch, "{name} seed {seed}");
            assert!(report.delivered_correct());
        }
    }
}

/// A Trojan in a product the design never licensed is harmless.
#[test]
fn unused_products_cannot_affect_the_design() {
    let (p, imp) = synthesize("polynom");
    let used = imp.licenses_used(&p);
    let unused = p
        .catalog()
        .licenses_by_cost()
        .into_iter()
        .map(|(l, _)| l)
        .find(|l| !used.contains(l) && l.ip_type == IpTypeId::MULTIPLIER)
        .expect("some product is unused");
    let mut lib = CoreLibrary::new();
    lib.infect(
        unused,
        Trojan {
            trigger: Trigger::Combinational {
                mask_a: 0,
                pattern_a: 0,
                mask_b: 0,
                pattern_b: 0,
            }, // always-on!
            payload: Payload::XorMask(u64::MAX),
        },
    );
    let mut ctrl = PhaseController::new(&p, &imp, &lib);
    let report = ctrl.run(&InputVector::from_seed(p.dfg(), 1));
    assert!(!report.mismatch);
    assert!(report.delivered_correct());
}

/// Campaigns across two benchmarks: high detection, recovery improving
/// with trigger rarity, naive re-execution useless.
#[test]
fn campaign_rates_match_paper_expectations() {
    for name in ["diff2", "mof2"] {
        let (p, imp) = synthesize(name);
        let cfg = CampaignConfig {
            runs: 120,
            rarity_bits: 6,
            targeted_percent: 80,
            ..CampaignConfig::default()
        };
        let r = run_campaign(&p, &imp, &cfg);
        assert!(r.corrupted > 10, "{name}: {r:?}");
        assert!(r.detection_rate() >= 0.95, "{name}: {r:?}");
        assert!(r.recovery_rate() >= 0.85, "{name}: {r:?}");
        let naive = troy_sim::naive_reexecution_recovery_rate(&p, &imp, &cfg);
        assert!(naive <= 0.05, "{name}: naive {naive}");
    }
}

/// Detection-only designs (the baseline) detect but cannot heal.
#[test]
fn detection_only_designs_detect_but_do_not_recover() {
    let dfg = benchmarks::polynom();
    let p = SynthesisProblem::builder(dfg, Catalog::paper8())
        .mode(Mode::DetectionOnly)
        .detection_latency(4)
        .build()
        .expect("valid");
    let s = ExactSolver::new()
        .synthesize(&p, &SolveOptions::quick())
        .expect("feasible");
    let iv = InputVector::from_seed(p.dfg(), 5);
    let victim = troy_dfg::NodeId::new(0);
    let vendor = s
        .implementation
        .assignment(victim, Role::Nc)
        .unwrap()
        .vendor;
    let mut lib = CoreLibrary::new();
    lib.infect(
        License {
            vendor,
            ip_type: IpTypeId::MULTIPLIER,
        },
        Trojan {
            trigger: Trigger::on_operand_a(iv.values(victim)[0]),
            payload: Payload::XorMask(0xFF00),
        },
    );
    let mut ctrl = PhaseController::new(&p, &s.implementation, &lib);
    let report = ctrl.run(&iv);
    assert!(report.mismatch);
    assert!(report.recovery.is_none());
    assert!(!report.delivered_correct());
}
