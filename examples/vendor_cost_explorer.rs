//! Design-space exploration: how the license bill moves with latency,
//! area and protection level — the trade-off a procurement engineer
//! actually faces.
//!
//! ```text
//! cargo run --release --example vendor_cost_explorer
//! ```

use troy_dfg::benchmarks;
use troyhls::{Catalog, ExactSolver, Mode, SolveOptions, SynthesisProblem, Synthesizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = Catalog::paper8();
    println!("fir16 (31 ops) on the 8-vendor catalog\n");
    println!(
        "{:<22} {:>7} {:>9} {:>8} {:>6} {:>6}",
        "configuration", "lambda", "area cap", "cost", "u", "t"
    );

    // Sweep protection level x latency at a generous area cap.
    for (mode, name) in [
        (Mode::DetectionOnly, "detection only"),
        (Mode::DetectionRecovery, "detection+recovery"),
    ] {
        for lambda in [6usize, 8, 10] {
            let builder = SynthesisProblem::builder(benchmarks::fir16(), catalog.clone())
                .mode(mode)
                .area_limit(250_000);
            let builder = match mode {
                Mode::DetectionOnly => builder.detection_latency(lambda),
                Mode::DetectionRecovery => builder.total_latency(2 * lambda),
            };
            let problem = builder.build()?;
            match ExactSolver::new().synthesize(&problem, &SolveOptions::default()) {
                Ok(s) => {
                    let st = s.implementation.stats(&problem);
                    println!(
                        "{:<22} {:>7} {:>9} {:>8} {:>6} {:>6}",
                        name,
                        problem.total_latency(),
                        250_000,
                        format!("${}{}", s.cost, if s.proven_optimal { "" } else { "*" }),
                        st.instances_used,
                        st.licenses_used
                    );
                }
                Err(e) => println!("{name:<22} {lambda:>7}: {e}"),
            }
        }
    }

    // Sweep the area cap at fixed latency: tighter silicon forces schedule
    // serialization and eventually infeasibility.
    println!("\narea sweep (detection+recovery, lambda = 12):");
    for area in [250_000u64, 150_000, 120_000, 110_000, 100_000, 60_000] {
        let problem = SynthesisProblem::builder(benchmarks::fir16(), catalog.clone())
            .mode(Mode::DetectionRecovery)
            .total_latency(12)
            .area_limit(area)
            .build()?;
        match ExactSolver::new().synthesize(&problem, &SolveOptions::default()) {
            Ok(s) => {
                let st = s.implementation.stats(&problem);
                println!(
                    "  area <= {area:>7}: ${}{}  (u={}, actual area {})",
                    s.cost,
                    if s.proven_optimal { "" } else { "*" },
                    st.instances_used,
                    st.area
                );
            }
            Err(e) => println!("  area <= {area:>7}: {e}"),
        }
    }
    Ok(())
}
