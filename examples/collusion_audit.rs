//! Why Rule 2 exists: a colluding-vendor audit, plus profiling for
//! closely-related operations (Rule 2 for fast recovery).
//!
//! ```text
//! cargo run --release --example collusion_audit
//! ```
//!
//! Part 1 pits a marker-passing colluding Trojan (an upstream unit tags its
//! outputs; a downstream unit of the *same product* fires on the tag)
//! against (a) a rule-compliant synthesized design and (b) a hand-made
//! binding that violates Rule 2. Part 2 profiles a DSP kernel's input
//! relations to discover closely-related multiplications and shows the
//! license-cost impact of protecting them.

use troy_dfg::{parse_dfg, NodeId};
use troy_sim::{
    collusion_audit, profile_related_pairs_with, ColludingTrojan, InputVector, ProfileConfig,
};
use troyhls::{
    collusion_exposure, interactions, Assignment, Catalog, ExactSolver, Implementation, Mode, Role,
    SolveOptions, SynthesisProblem, Synthesizer, VendorId,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Part 1: the collusion channel -----------------------------------
    let dfg = parse_dfg(
        "dfg lane\n\
         op front mul\n\
         op mid mul\n\
         op back add\n\
         edge front mid\n\
         edge mid back\n",
    )?;
    let problem = SynthesisProblem::builder(dfg, Catalog::paper8())
        .mode(Mode::DetectionOnly)
        .detection_latency(4)
        .build()?;
    let trojan = ColludingTrojan {
        tag: 0b0110,
        tag_bits: 4,
        payload_mask: 0xFFFF_0000,
    };
    let inputs = InputVector::from_seed(problem.dfg(), 7);

    // (a) A synthesized, rule-compliant design.
    let good = ExactSolver::new().synthesize(&problem, &SolveOptions::default())?;
    let exposure = collusion_exposure(&problem, &good.implementation);
    let fired = collusion_audit(&problem, &good.implementation, &trojan, &inputs);
    println!("rule-compliant design:");
    println!(
        "  direct interactions: {}",
        interactions(&problem, &good.implementation).len()
    );
    println!("  same-vendor interactions (static): {exposure}");
    println!(
        "  products whose collusion fired (dynamic): {}",
        fired.len()
    );
    assert_eq!(exposure, 0);
    assert!(fired.is_empty());

    // (b) A binding that puts the whole NC lane on one vendor.
    let mut bad = Implementation::new(problem.dfg().len());
    let v0 = VendorId::new(0);
    for (i, cycle) in [(0usize, 1usize), (1, 2), (2, 3)] {
        bad.assign(NodeId::new(i), Role::Nc, Assignment { cycle, vendor: v0 });
        bad.assign(
            NodeId::new(i),
            Role::Rc,
            Assignment {
                cycle,
                vendor: VendorId::new(i % 3 + 1),
            },
        );
    }
    let exposure = collusion_exposure(&problem, &bad);
    let fired = collusion_audit(&problem, &bad, &trojan, &inputs);
    println!("\nrule-violating design (whole NC lane on {v0}):");
    println!("  same-vendor interactions (static): {exposure}");
    println!(
        "  products whose collusion fired (dynamic): {:?}",
        fired.iter().map(ToString::to_string).collect::<Vec<_>>()
    );
    assert!(exposure > 0 && !fired.is_empty());

    // ---- Part 2: profiling closely-related inputs ------------------------
    // A stereo filter applies the same coefficient to two correlated
    // channels: left and right samples differ by a tiny inter-channel
    // offset, so the two mults are closely related in the paper's sense.
    let kernel = parse_dfg(
        "dfg stereo\n\
         op mul_l mul\n\
         op mul_r mul\n\
         op mix add\n\
         edge mul_l mix\n\
         edge mul_r mix\n",
    )?;
    let (mul_l, mul_r) = (NodeId::new(0), NodeId::new(1));
    let cfg = ProfileConfig {
        samples: 48,
        max_distance: 8,
        ..ProfileConfig::default()
    };
    let pairs = profile_related_pairs_with(&kernel, &cfg, |s| {
        let mut iv = InputVector::zeros(&kernel);
        let sample = 1_000_000 + 37 * s as u64;
        iv.set(mul_l, 0, sample);
        iv.set(mul_l, 1, 13); // coefficient
        iv.set(mul_r, 0, sample + 2); // correlated channel
        iv.set(mul_r, 1, 13);
        iv
    });
    println!("\nprofiled closely-related pairs: {pairs:?}");
    assert_eq!(pairs, vec![(mul_l, mul_r)]);

    let base = SynthesisProblem::builder(kernel.clone(), Catalog::paper8())
        .mode(Mode::DetectionRecovery)
        .detection_latency(3)
        .recovery_latency(2)
        .build()?;
    let mut guarded = SynthesisProblem::builder(kernel, Catalog::paper8())
        .mode(Mode::DetectionRecovery)
        .detection_latency(3)
        .recovery_latency(2);
    for &(a, b) in &pairs {
        guarded = guarded.related_pair(a, b);
    }
    let guarded = guarded.build()?;
    let s_base = ExactSolver::new().synthesize(&base, &SolveOptions::default())?;
    let s_guarded = ExactSolver::new().synthesize(&guarded, &SolveOptions::default())?;
    println!(
        "license cost without rule-2 pairs: ${}, with: ${} (+${})",
        s_base.cost,
        s_guarded.cost,
        s_guarded.cost - s_base.cost
    );
    assert!(s_guarded.cost >= s_base.cost);
    Ok(())
}
