//! Mission-critical scenario: a flight-control-style filter must keep
//! producing correct outputs through an activated Trojan until the part can
//! be replaced.
//!
//! ```text
//! cargo run --release --example mission_critical_recovery
//! ```
//!
//! Synthesizes the HAL differential-equation solver (`diff2`) with
//! detection + recovery, then simulates a 60-step mission. The adversary's
//! Trojan waits for a magic operand value; the attacker manages to inject
//! that sample twice mid-mission. Both activations are detected by the
//! NC/RC monitor and both are healed by the recovery re-binding — the
//! mission's delivered outputs stay correct throughout, which is exactly
//! the property the paper targets.

use troy_dfg::{benchmarks, IpTypeId, NodeId};
use troy_sim::{CoreLibrary, InputVector, Payload, PhaseController, Trigger, Trojan};
use troyhls::{
    Catalog, ExactSolver, License, Mode, Role, SolveOptions, SynthesisProblem, Synthesizer,
};

const MAGIC_SAMPLE: u64 = 0xFEED_FACE_CAFE_F00D;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let problem = SynthesisProblem::builder(benchmarks::diff2(), Catalog::paper8())
        .mode(Mode::DetectionRecovery)
        .detection_latency(5)
        .recovery_latency(5)
        .area_limit(80_000)
        .build()?;
    let design = ExactSolver::new().synthesize(&problem, &SolveOptions::default())?;
    println!(
        "diff2 protected design: ${} in licenses, {}",
        design.cost,
        design.implementation.stats(&problem)
    );

    // The Trojan sits in the multiplier product that hosts o1's NC copy and
    // waits for one exact operand value — a rare trigger in the paper's
    // sense: no other operation will ever see this 64-bit value.
    let victim = NodeId::new(0);
    let vendor = design
        .implementation
        .assignment(victim, Role::Nc)
        .expect("complete")
        .vendor;
    let mut library = CoreLibrary::new();
    library.infect(
        License {
            vendor,
            ip_type: IpTypeId::MULTIPLIER,
        },
        Trojan {
            trigger: Trigger::on_operand_a(MAGIC_SAMPLE),
            payload: Payload::AddOffset(1 << 20),
        },
    );

    let mut controller = PhaseController::new(&problem, &design.implementation, &library);
    let mut detections = 0usize;
    let mut recovered = 0usize;
    let steps = 60usize;
    let attack_steps = [30usize, 45];
    for step in 0..steps {
        let mut inputs = InputVector::from_seed(problem.dfg(), 1000 + step as u64);
        if attack_steps.contains(&step) {
            // The attacker smuggles the magic sample into the input stream.
            inputs.set(victim, 0, MAGIC_SAMPLE);
        }
        let report = controller.run(&inputs);
        if report.mismatch {
            detections += 1;
            println!(
                "  step {step:>2}: Trojan activated -> detected, recovery {}",
                if report.delivered_correct() {
                    "healed it"
                } else {
                    "FAILED"
                }
            );
            if report.delivered_correct() {
                recovered += 1;
            }
        } else {
            assert!(report.delivered_correct(), "clean steps deliver golden");
        }
    }
    println!("mission: {steps} steps, {detections} activations, {recovered} recovered");
    assert_eq!(detections, attack_steps.len(), "both injections detected");
    assert_eq!(detections, recovered, "every activation recovered");
    println!("mission completed with correct outputs throughout");
    Ok(())
}
