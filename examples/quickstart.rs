//! Quickstart: synthesize a Trojan-tolerant design and exercise it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the whole pipeline on the paper's motivational example: build the
//! problem, synthesize the cost-optimal schedule/binding, validate it, then
//! simulate a mission step with an injected Trojan and watch detection and
//! recovery happen.

use troy_dfg::{benchmarks, IpTypeId, NodeId};
use troy_sim::{CoreLibrary, InputVector, Payload, PhaseController, Trigger, Trojan};
use troyhls::{
    validate, Catalog, ExactSolver, License, Mode, Role, SolveOptions, SynthesisProblem,
    Synthesizer,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The function to protect: the paper's 5-op polynomial evaluator.
    let dfg = benchmarks::polynom();
    println!("{dfg}");

    // 2. Constraints from the paper's Figure 5: 4 detection cycles,
    //    3 recovery cycles, 22000 area cells, Table 1 vendor catalog.
    let problem = SynthesisProblem::builder(dfg, Catalog::table1())
        .mode(Mode::DetectionRecovery)
        .detection_latency(4)
        .recovery_latency(3)
        .area_limit(22_000)
        .build()?;

    // 3. Synthesize the minimum-license-cost design.
    let design = ExactSolver::new().synthesize(&problem, &SolveOptions::default())?;
    println!(
        "synthesized: cost ${} ({}), {}",
        design.cost,
        if design.proven_optimal {
            "optimal"
        } else {
            "best effort"
        },
        design.implementation.stats(&problem)
    );
    assert!(validate(&problem, &design.implementation).is_empty());

    // 4. Print the schedule: op -> (cycle, vendor) per role.
    for op in problem.dfg().node_ids() {
        let row: Vec<String> = [Role::Nc, Role::Rc, Role::Recovery]
            .iter()
            .map(|&r| {
                let a = design.implementation.assignment(op, r).expect("complete");
                format!("{r}: cycle {} on {}", a.cycle, a.vendor)
            })
            .collect();
        println!("  {op}: {}", row.join(" | "));
    }

    // 5. Simulate: infect the vendor that executes o3's NC copy with a
    //    Trojan triggered by o3's actual input value.
    let inputs = InputVector::from_seed(problem.dfg(), 99);
    let victim = NodeId::new(2);
    let infected_vendor = design
        .implementation
        .assignment(victim, Role::Nc)
        .expect("complete")
        .vendor;
    let mut library = CoreLibrary::new();
    library.infect(
        License {
            vendor: infected_vendor,
            ip_type: IpTypeId::MULTIPLIER,
        },
        Trojan {
            trigger: Trigger::on_operand_a(inputs.values(victim)[0]),
            payload: Payload::XorMask(0x00FF_FF00),
        },
    );

    let mut controller = PhaseController::new(&problem, &design.implementation, &library);
    let report = controller.run(&inputs);
    println!("\nmission step with infected {infected_vendor}/multiplier:");
    println!("  golden output: {:?}", report.golden);
    println!("  NC output:     {:?}", report.nc);
    println!("  RC output:     {:?}", report.rc);
    println!("  detected:      {}", report.mismatch);
    println!("  recovery:      {:?}", report.recovery);
    println!("  delivered correct result: {}", report.delivered_correct());
    assert!(report.mismatch && report.delivered_correct());
    Ok(())
}
