//! Bring your own algorithm: parse a DFG from the textual format, declare
//! closely-related operations (Rule 2 for fast recovery) and synthesize.
//!
//! ```text
//! cargo run --release --example custom_dfg
//! ```

use troy_dfg::{parse_dfg, to_dot, NodeId};
use troyhls::{
    diversity_constraints, validate, Catalog, ExactSolver, Mode, RuleKind, SolveOptions,
    SynthesisProblem, Synthesizer,
};

/// A tiny DSP kernel: two parallel MAC lanes into a shared accumulator.
/// The two `mul` front ends see closely-related inputs (adjacent samples of
/// one stream), so the paper's Rule 2 for fast recovery applies to them.
const KERNEL: &str = "\
dfg mac2
op mul_a mul
op mul_b mul
op acc_ab add
op scale mul
op out add
edge mul_a acc_ab
edge mul_b acc_ab
edge acc_ab scale
edge scale out
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dfg = parse_dfg(KERNEL)?;
    println!("{dfg}");
    println!(
        "Graphviz available via to_dot(): {} bytes\n",
        to_dot(&dfg).len()
    );

    let mul_a = NodeId::new(0);
    let mul_b = NodeId::new(1);

    // Without the related pair.
    let plain = SynthesisProblem::builder(dfg.clone(), Catalog::paper8())
        .mode(Mode::DetectionRecovery)
        .detection_latency(5)
        .recovery_latency(4)
        .area_limit(60_000)
        .build()?;

    // With mul_a ~ mul_b declared closely related: their recovery copies
    // must also avoid each other's detection-phase vendors.
    let related = SynthesisProblem::builder(dfg, Catalog::paper8())
        .mode(Mode::DetectionRecovery)
        .detection_latency(5)
        .recovery_latency(4)
        .area_limit(60_000)
        .related_pair(mul_a, mul_b)
        .build()?;

    let extra = diversity_constraints(&related)
        .iter()
        .filter(|c| c.rule == RuleKind::RecoveryRelated)
        .count();
    println!("related pair adds {extra} diversity constraints");

    let options = SolveOptions::default();
    let s_plain = ExactSolver::new().synthesize(&plain, &options)?;
    let s_related = ExactSolver::new().synthesize(&related, &options)?;
    assert!(validate(&plain, &s_plain.implementation).is_empty());
    assert!(validate(&related, &s_related.implementation).is_empty());

    println!(
        "plain:   ${} — {}",
        s_plain.cost,
        s_plain.implementation.stats(&plain)
    );
    println!(
        "related: ${} — {}",
        s_related.cost,
        s_related.implementation.stats(&related)
    );
    assert!(s_related.cost >= s_plain.cost);
    println!(
        "\nrule 2 for fast recovery costs ${} extra on this kernel",
        s_related.cost - s_plain.cost
    );
    Ok(())
}
