//! `troy-suite` — the workspace-level crate of the TroyHLS reproduction.
//!
//! Hosts the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`); re-exports the member crates so examples
//! and tests can use one import root.
//!
//! See the member crates for the actual functionality:
//! [`troy_dfg`], [`troy_ilp`], [`troyhls`], [`troy_sim`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use troy_dfg;
pub use troy_ilp;
pub use troy_sim;
pub use troyhls;
